package walltime

import "time"

// runner.go is declared in Config.WallClockFiles: wall-clock reads here
// are the sanctioned bridge between the deterministic core and real time.
func RunnerNow() time.Time { return time.Now() }
