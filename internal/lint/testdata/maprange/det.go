// Package maprange is the maprange analyzer corpus: which bodies keep
// randomized map iteration order away from results, and which leak it.
package maprange

import "sort"

// Leak lets iteration order reach the returned slice unsorted.
func Leak(m map[string]int) []string {
	var out []string
	for k := range m { // want `\[maprange\] iteration over map m`
		out = append(out, k)
	}
	return out
}

// First returns from inside the loop: which entry wins is random.
func First(m map[string]int) (string, bool) {
	for k := range m { // want `\[maprange\] iteration over map m`
		return k, true
	}
	return "", false
}

// FloatSum is order-sensitive in the low bits: float addition does not
// commute bitwise, which is exactly the replay hazard.
func FloatSum(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m { // want `\[maprange\] iteration over map m`
		total += v
	}
	return total
}

// Sorted collects then sorts before use: safe.
func Sorted(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Sum accumulates integers: commutative, safe.
func Sum(m map[string]int) int {
	total := 0
	for _, v := range m {
		total += v
	}
	return total
}

// Rebuild writes a map keyed by the loop variable: same map either way.
func Rebuild(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Max is the guarded extremum-select idiom: order-free.
func Max(m map[string]int) int {
	best := 0
	for _, v := range m {
		if best < v {
			best = v
		}
	}
	return best
}

// Prune deletes per-entry with a continue guard: order-free.
func Prune(m map[string]int) {
	for k, v := range m {
		if v != 0 {
			continue
		}
		delete(m, k)
	}
}
