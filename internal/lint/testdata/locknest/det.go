// Package locknest is the locknest analyzer corpus. The test config
// declares the order Server.mu(1) → Injector.mu(2) → Manager.mu(3),
// mirroring the real ctlrpc/chaos/fleet table.
package locknest

import "sync"

type Server struct{ mu sync.RWMutex }

type Injector struct {
	mu  sync.Mutex
	mgr *Manager
}

type Manager struct {
	mu  sync.Mutex
	inj *Injector
}

// Apply follows the declared order: Injector.mu (2), then a Manager
// method that takes rank 3.
func (in *Injector) Apply() {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.mgr.poke()
}

func (m *Manager) poke() {
	m.mu.Lock()
	defer m.mu.Unlock()
}

// badDirect inverts the order with a direct acquisition.
func (m *Manager) badDirect() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inj.mu.Lock() // want `\[locknest\] acquires locknest\.Injector\.mu \(rank 2\) while locknest\.Manager\.mu \(rank 3\) is held`
	m.inj.mu.Unlock()
}

// badViaCall inverts the order through the same-package call graph: the
// callee's summary says it acquires Injector.mu.
func (m *Manager) badViaCall() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.inj.lockUnlock() // want `\[locknest\] call to lockUnlock acquires locknest\.Injector\.mu \(rank 2\) while locknest\.Manager\.mu \(rank 3\) is held`
}

func (in *Injector) lockUnlock() {
	in.mu.Lock()
	in.mu.Unlock()
}

// badRelock self-deadlocks on a non-reentrant mutex.
func (in *Injector) badRelock() {
	in.mu.Lock()
	in.mu.Lock() // want `\[locknest\] re-acquires locknest\.Injector\.mu already held on this path: self-deadlock`
	in.mu.Unlock()
	in.mu.Unlock()
}

// dispatch is the read-branch shape that demands branch sensitivity:
// the RLock+defer+return branch terminates, so the writer Lock below is
// not a re-acquisition.
func (s *Server) dispatch(readOnly bool) int {
	if readOnly {
		s.mu.RLock()
		defer s.mu.RUnlock()
		return 1
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return 2
}

// spawn hands work to a goroutine, which starts with no locks held, so
// the rank-2 acquisition inside is clean even under Manager.mu.
func (m *Manager) spawn() {
	m.mu.Lock()
	defer m.mu.Unlock()
	go func() {
		m.inj.lockUnlock()
	}()
}
