// Package fsyncerr is the fsyncerr analyzer corpus: the package is in
// the test config's fsync scope, so its own types count as durable.
package fsyncerr

import "os"

// Log stands in for wal.Log: a durable-state owner declared in an
// fsync-scoped package.
type Log struct{ f *os.File }

func (l *Log) Sync() error  { return l.f.Sync() }
func (l *Log) Close() error { return l.f.Close() }

// quiet's Close has no error result: nothing to lose, never flagged.
type quiet struct{}

func (quiet) Close() {}

func bad(l *Log, f *os.File) {
	l.Sync()        // want `\[fsyncerr\] Log\.Sync discards its error`
	defer l.Close() // want `\[fsyncerr\] defer Log\.Close discards its error`
	f.Close()       // want `\[fsyncerr\] File\.Close discards its error`
}

func good(l *Log, f *os.File, q quiet) error {
	_ = l.Sync() // an explicit discard is a visible decision
	if err := f.Close(); err != nil {
		return err
	}
	q.Close() // no error result
	return l.Close()
}
