// Package hotalloc is the hotalloc analyzer corpus: the construct
// classes banned under //lwlint:hotpath, and the shapes that stay free.
package hotalloc

import (
	"fmt"
	"strconv"
)

func sink(v any)      {}
func sinks(vs ...any) {}

// Hot exercises every banned construct class.
//
//lwlint:hotpath
func Hot(n int, s string) {
	m := map[int]int{} // want `\[hotalloc\] hotpath Hot: map literal allocates`
	_ = m
	sl := []int{1, 2} // want `\[hotalloc\] hotpath Hot: slice literal allocates`
	_ = sl
	mk := make([]byte, n) // want `\[hotalloc\] hotpath Hot: make allocates`
	_ = mk
	fmt.Println(n)               // want `\[hotalloc\] hotpath Hot: fmt\.Println allocates`
	f := func() int { return n } // want `\[hotalloc\] hotpath Hot: closure captures n`
	_ = f
	t := s + s // want `\[hotalloc\] hotpath Hot: string concatenation allocates`
	_ = t
	v := any(n) // want `\[hotalloc\] hotpath Hot: conversion of int to (any|interface\{\}) boxes`
	_ = v
	sink(n)  // want `\[hotalloc\] hotpath Hot: implicit conversion of int to (any|interface\{\}) boxes`
	sink(&n) // a pointer fits the interface word: no box, no finding
	sinks(n) // want `\[hotalloc\] hotpath Hot: implicit conversion of int to (any|interface\{\}) boxes`
	var pre []any
	sinks(pre...) // slice pass-through: no per-element boxing
}

// Cold is unmarked: identical constructs are fine off the hot path.
func Cold(n int) string { return fmt.Sprintf("cold %d", n) }

// AppendID is hot yet allocation-free: append into a caller buffer.
//
//lwlint:hotpath
func AppendID(dst []byte, id uint64) []byte {
	return strconv.AppendUint(dst, id, 10)
}
