package lint

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"
)

// AnalyzerLocknest enforces the declared mutex acquisition order
// (Config.LockOrder). The PR 5 contract is the founding case: chaos
// injection takes Injector.mu and then calls fleet.Manager methods
// (which take Manager.mu), and the manager never calls back into the
// injector — so injection can never deadlock the reconciler. The
// analyzer is syntactic and intra-package: it walks each function in
// source order tracking which table mutexes are held (x.mu.Lock /
// Unlock / defer Unlock), propagates acquisitions through the
// same-package call graph, and treats any cross-package call to an
// exported method of a Methods-marked class as acquiring that class's
// lock. Acquiring a rank at or below one already held is a deadlock
// hazard and is flagged.
var AnalyzerLocknest = &Analyzer{
	Name: "locknest",
	Doc: "mutexes in the declared lock-order table must be acquired in " +
		"ascending rank; taking a lower or equal rank while a higher one " +
		"is held is a deadlock hazard",
	Run: runLocknest,
}

type lockClass struct {
	LockClass
	key string // "importpath.Type"
}

type lockTable struct {
	byType map[string]*lockClass
}

func newLockTable(order []LockClass) *lockTable {
	t := &lockTable{byType: make(map[string]*lockClass, len(order))}
	for i := range order {
		c := &lockClass{LockClass: order[i], key: order[i].Type}
		t.byType[c.key] = c
	}
	return t
}

// classOfRecv maps an expression's (possibly pointer) type to its lock
// class, or nil.
func (t *lockTable) classOfType(typ types.Type) *lockClass {
	if typ == nil {
		return nil
	}
	if ptr, ok := typ.(*types.Pointer); ok {
		typ = ptr.Elem()
	}
	named, ok := typ.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return nil
	}
	return t.byType[named.Obj().Pkg().Path()+"."+named.Obj().Name()]
}

func (c *lockClass) label() string {
	short := c.key
	if i := strings.LastIndex(short, "/"); i >= 0 {
		short = short[i+1:]
	}
	return short + "." + c.Field
}

var lockMethods = map[string]bool{"Lock": true, "RLock": true, "TryLock": true, "TryRLock": true}
var unlockMethods = map[string]bool{"Unlock": true, "RUnlock": true}

func runLocknest(p *Pass) {
	table := newLockTable(p.Cfg.LockOrder)
	if len(table.byType) == 0 {
		return
	}

	// Pass 1: per-function direct-acquisition summaries (closures
	// excluded — they run on their own goroutine or later in time), then
	// transitive closure over the same-package call graph.
	infos := make(map[*types.Func]*funcLockInfo)
	var fnBodies []*ast.BlockStmt // FuncDecl bodies to walk in pass 2

	collect := func(fn *types.Func, body *ast.BlockStmt) {
		fi := &funcLockInfo{acquires: make(map[*lockClass]bool), calls: make(map[*types.Func]bool)}
		infos[fn] = fi
		ast.Inspect(body, func(n ast.Node) bool {
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if cls, isLock, _ := p.directLockOp(table, call); cls != nil && isLock {
				fi.acquires[cls] = true
			}
			if callee := p.calleeFunc(call); callee != nil && callee.Pkg() == p.Pkg {
				fi.calls[callee] = true
			}
			return true
		})
	}

	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := p.Info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			collect(fn, fd.Body)
			fnBodies = append(fnBodies, fd.Body)
		}
	}
	// Fixpoint: fold callee acquisitions into callers.
	for changed := true; changed; {
		changed = false
		for _, fi := range infos {
			for callee := range fi.calls {
				ci, ok := infos[callee]
				if !ok {
					continue
				}
				for cls := range ci.acquires {
					if !fi.acquires[cls] {
						fi.acquires[cls] = true
						changed = true
					}
				}
			}
		}
	}

	// Pass 2: walk each function (and each closure, with an empty held
	// set) in statement order, tracking held locks and checking every
	// acquisition against them. Branches whose body terminates (return,
	// panic) restore the held set afterwards, so the common
	// "RLock+defer+return in a read branch, then Lock" shape does not
	// false-positive; alternative branches of a switch/select each start
	// from the same held set.
	w := &lockWalker{p: p, table: table, infos: infos, declared: orderString(p.Cfg.LockOrder)}
	for _, body := range fnBodies {
		w.walkFunc(body)
	}
}

type funcLockInfo struct {
	acquires map[*lockClass]bool
	calls    map[*types.Func]bool
}

type lockWalker struct {
	p        *Pass
	table    *lockTable
	infos    map[*types.Func]*funcLockInfo
	declared string

	held     []*lockClass
	closures []*ast.FuncLit
}

// walkFunc analyzes one function body, then every closure discovered in
// it, each with an empty held set (closures run later or elsewhere).
func (w *lockWalker) walkFunc(body *ast.BlockStmt) {
	w.held = nil
	w.walkStmts(body.List)
	for len(w.closures) > 0 {
		lit := w.closures[0]
		w.closures = w.closures[1:]
		w.held = nil
		w.walkStmts(lit.Body.List)
	}
}

func (w *lockWalker) check(pos ast.Node, cls *lockClass, via string) {
	for _, h := range w.held {
		if cls.Rank < h.Rank {
			w.p.Reportf(pos.Pos(), "%sacquires %s (rank %d) while %s (rank %d) is held; declared order is %s", via, cls.label(), cls.Rank, h.label(), h.Rank, w.declared)
			return
		}
		if cls == h {
			w.p.Reportf(pos.Pos(), "%sre-acquires %s already held on this path: self-deadlock", via, cls.label())
			return
		}
	}
}

func (w *lockWalker) release(cls *lockClass) {
	for i := len(w.held) - 1; i >= 0; i-- {
		if w.held[i] == cls {
			w.held = append(w.held[:i], w.held[i+1:]...)
			return
		}
	}
}

func (w *lockWalker) snapshot() []*lockClass { return append([]*lockClass(nil), w.held...) }

func (w *lockWalker) walkStmts(stmts []ast.Stmt) {
	for _, s := range stmts {
		w.walkStmt(s)
	}
}

func (w *lockWalker) walkStmt(s ast.Stmt) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		w.walkExpr(s.X)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			w.walkExpr(e)
		}
		for _, e := range s.Lhs {
			w.walkExpr(e)
		}
	case *ast.DeclStmt, *ast.ReturnStmt, *ast.IncDecStmt, *ast.SendStmt:
		ast.Inspect(s, w.exprVisitor())
	case *ast.DeferStmt:
		// defer x.mu.Unlock() keeps the lock held to function end; a
		// deferred closure is analyzed separately; any other deferred
		// call runs with at least the current locks unreleased on this
		// path, so it is checked here.
		if cls, isLock, isUnlock := w.p.directLockOp(w.table, s.Call); cls != nil {
			if isUnlock {
				return
			}
			if isLock {
				w.check(s, cls, "")
				w.held = append(w.held, cls)
				return
			}
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.closures = append(w.closures, lit)
			for _, a := range s.Call.Args {
				w.walkExpr(a)
			}
			return
		}
		w.walkExpr(s.Call)
	case *ast.GoStmt:
		// The spawned goroutine starts with no locks held.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.closures = append(w.closures, lit)
		}
		for _, a := range s.Call.Args {
			w.walkExpr(a)
		}
	case *ast.BlockStmt:
		w.walkStmts(s.List)
	case *ast.IfStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		before := w.snapshot()
		w.walkStmts(s.Body.List)
		if terminates(s.Body.List) {
			w.held = before
		}
		if s.Else != nil {
			beforeElse := w.snapshot()
			w.walkStmt(s.Else)
			if b, ok := s.Else.(*ast.BlockStmt); ok && terminates(b.List) {
				w.held = beforeElse
			}
		}
	case *ast.ForStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Cond)
		w.walkStmts(s.Body.List)
		w.walkStmt(s.Post)
	case *ast.RangeStmt:
		w.walkExpr(s.X)
		w.walkStmts(s.Body.List)
	case *ast.SwitchStmt:
		w.walkStmt(s.Init)
		w.walkExpr(s.Tag)
		w.walkCases(s.Body)
	case *ast.TypeSwitchStmt:
		w.walkStmt(s.Init)
		w.walkStmt(s.Assign)
		w.walkCases(s.Body)
	case *ast.SelectStmt:
		w.walkCases(s.Body)
	case *ast.LabeledStmt:
		w.walkStmt(s.Stmt)
	}
}

// walkCases treats each clause as an alternative starting from the same
// held set, restoring it afterwards (a clause that leaks a lock past the
// switch is rare enough to trade for zero false positives).
func (w *lockWalker) walkCases(body *ast.BlockStmt) {
	before := w.snapshot()
	for _, c := range body.List {
		w.held = append([]*lockClass(nil), before...)
		switch c := c.(type) {
		case *ast.CaseClause:
			for _, e := range c.List {
				w.walkExpr(e)
			}
			w.walkStmts(c.Body)
		case *ast.CommClause:
			w.walkStmt(c.Comm)
			w.walkStmts(c.Body)
		}
	}
	w.held = before
}

func (w *lockWalker) walkExpr(e ast.Expr) {
	if e == nil {
		return
	}
	ast.Inspect(e, w.exprVisitor())
}

// exprVisitor handles lock events and call summaries inside expressions,
// pruning closures into the separate-analysis queue.
func (w *lockWalker) exprVisitor() func(ast.Node) bool {
	return func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			w.closures = append(w.closures, n)
			return false
		case *ast.CallExpr:
			w.callEvent(n)
		}
		return true
	}
}

func (w *lockWalker) callEvent(call *ast.CallExpr) {
	if cls, isLock, isUnlock := w.p.directLockOp(w.table, call); cls != nil {
		if isLock {
			w.check(call, cls, "")
			w.held = append(w.held, cls)
		} else if isUnlock {
			w.release(cls)
		}
		return
	}
	callee := w.p.calleeFunc(call)
	if callee == nil {
		return
	}
	if fi, ok := w.infos[callee]; ok {
		for cls := range fi.acquires {
			w.check(call, cls, fmt.Sprintf("call to %s ", callee.Name()))
		}
		return
	}
	// Cross-package: exported methods of Methods-marked classes count
	// as acquiring the class lock even though the body is out of reach.
	if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil && callee.Exported() {
		if cls := w.table.classOfType(sig.Recv().Type()); cls != nil && cls.Methods {
			w.check(call, cls, fmt.Sprintf("call to (%s).%s ", sig.Recv().Type(), callee.Name()))
		}
	}
}

// terminates reports whether a statement list always leaves the
// enclosing function (return, panic) on its final statement.
func terminates(stmts []ast.Stmt) bool {
	if len(stmts) == 0 {
		return false
	}
	switch last := stmts[len(stmts)-1].(type) {
	case *ast.ReturnStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := last.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	case *ast.BlockStmt:
		return terminates(last.List)
	}
	return false
}

// directLockOp matches x.<field>.Lock()/Unlock()-shaped calls against
// the table. Returns the class and whether the op acquires or releases.
func (p *Pass) directLockOp(table *lockTable, call *ast.CallExpr) (cls *lockClass, isLock, isUnlock bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	name := sel.Sel.Name
	if !lockMethods[name] && !unlockMethods[name] {
		return nil, false, false
	}
	field, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return nil, false, false
	}
	c := table.classOfType(p.TypeOf(field.X))
	if c == nil || field.Sel.Name != c.Field {
		return nil, false, false
	}
	return c, lockMethods[name], unlockMethods[name]
}

// calleeFunc resolves a call's static callee, or nil for dynamic calls,
// builtins, and conversions.
func (p *Pass) calleeFunc(call *ast.CallExpr) *types.Func {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		fn, _ := p.objOf(fun).(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.Info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func orderString(order []LockClass) string {
	parts := make([]string, 0, len(order))
	for _, c := range order {
		short := c.Type
		if i := strings.LastIndex(short, "/"); i >= 0 {
			short = short[i+1:]
		}
		parts = append(parts, fmt.Sprintf("%s.%s(%d)", short, c.Field, c.Rank))
	}
	return strings.Join(parts, " → ")
}
