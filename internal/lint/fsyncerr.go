package lint

import (
	"go/ast"
	"go/types"
)

// AnalyzerFsyncerr enforces the durability contract from the PR 8 WAL:
// on a durable file, an error from Sync or Close is the only signal that
// acknowledged bytes may not be on disk, so silently discarding it turns
// a reportable failure into data loss. Inside the durability-critical
// packages (internal/wal and the daemons' shutdown paths), a bare
// statement or defer of a Sync/Close that returns an error is flagged
// when the receiver is an *os.File or a type declared in a
// durability-critical package (wal.Log, wal.Store). Intentional discards
// must be explicit `_ =` assignments, which both the reader and this
// analyzer can see.
var AnalyzerFsyncerr = &Analyzer{
	Name: "fsyncerr",
	Doc: "durable-file Sync/Close errors must be handled (or explicitly " +
		"discarded with `_ =`) in the WAL and daemon shutdown paths",
	Run: runFsyncerr,
}

func runFsyncerr(p *Pass) {
	if !p.Cfg.inFsyncScope(p.ImportPath) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if call, ok := n.X.(*ast.CallExpr); ok {
					p.checkDurableDiscard(call, "")
				}
			case *ast.DeferStmt:
				p.checkDurableDiscard(n.Call, "defer ")
			}
			return true
		})
	}
}

func (p *Pass) checkDurableDiscard(call *ast.CallExpr, how string) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if name != "Sync" && name != "Close" {
		return
	}
	fn, ok := p.Info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return
	}
	if sig.Results().Len() != 1 || !isErrorType(sig.Results().At(0).Type()) {
		return
	}
	recv := sig.Recv().Type()
	if ptr, ok := recv.(*types.Pointer); ok {
		recv = ptr.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return
	}
	pkgPath := named.Obj().Pkg().Path()
	durable := pkgPath == "os" && named.Obj().Name() == "File" || p.Cfg.inFsyncScope(pkgPath)
	if !durable {
		return
	}
	p.Reportf(call.Pos(), "%s%s.%s discards its error: on a durable file this can silently lose acknowledged writes; handle it or discard explicitly with `_ =`", how, named.Obj().Name(), name)
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}
