package lint

import "strings"

// AnalyzerSimrand enforces the randomness contract from DESIGN.md and PR
// 2: every stream of simulation randomness is an explicit sim.Rand /
// sim.Substream so results are a pure function of the seed and
// internal/par fan-outs replay bit-identically at any worker count.
// math/rand has a process-global, lock-shared source and math/rand/v2
// auto-seeds, so importing either anywhere outside internal/sim silently
// breaks that contract. hash/maphash and crypto/rand draw from
// process-global seed material, which is equally fatal inside the
// deterministic packages (and legitimate elsewhere, e.g. in a daemon).
var AnalyzerSimrand = &Analyzer{
	Name: "simrand",
	Doc: "randomness must flow through sim.Rand/sim.Substream: math/rand " +
		"and math/rand/v2 are banned outside internal/sim, and " +
		"global-seed sources (hash/maphash, crypto/rand) are banned in " +
		"deterministic packages",
	Run: runSimrand,
}

func runSimrand(p *Pass) {
	if p.ImportPath == p.Cfg.SimPackage {
		return
	}
	deterministic := p.Cfg.IsDeterministic(p.ImportPath)
	for _, f := range p.Files {
		for _, spec := range f.Imports {
			path := strings.Trim(spec.Path.Value, `"`)
			switch path {
			case "math/rand", "math/rand/v2":
				p.Reportf(spec.Pos(), "import of %s: use %s (sim.Rand, sim.Substream) so seeds are explicit and substreams replay bit-identically", path, p.Cfg.SimPackage)
			case "hash/maphash", "crypto/rand":
				if deterministic {
					p.Reportf(spec.Pos(), "import of %s in deterministic package: its output is seeded from process-global state and cannot be replayed", path)
				}
			}
		}
	}
}
