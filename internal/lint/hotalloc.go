package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// AnalyzerHotalloc enforces the 0-allocs/op contracts. Functions whose
// doc comment carries the //lwlint:hotpath marker (chaos trunk
// bookkeeping, the ctlrpc wirefast codec, the dcn flow-sim event loop)
// are steady-state paths whose benchmarks assert 0 allocs/op; this
// analyzer rejects the construct classes that silently reintroduce
// allocation: fmt calls, map/slice literals and makes, closures
// capturing variables, non-constant string concatenation, and
// conversions of non-pointer concrete values to interfaces. Escape
// analysis can sometimes prove such a construct free, so real exceptions
// are suppressed with a benchmark-backed reason.
var AnalyzerHotalloc = &Analyzer{
	Name: "hotalloc",
	Doc: "//lwlint:hotpath functions must stay allocation-free: no fmt, " +
		"map/slice literals or makes, capturing closures, string " +
		"concatenation, or concrete-to-interface conversions",
	Run: runHotalloc,
}

func runHotalloc(p *Pass) {
	for _, f := range p.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !hasMarker(fd.Doc, hotpathMarker) {
				continue
			}
			p.checkHotBody(fd.Name.Name, fd.Body)
		}
	}
}

func hasMarker(doc *ast.CommentGroup, marker string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimSpace(c.Text)
		if text == marker || strings.HasPrefix(text, marker+" ") {
			return true
		}
	}
	return false
}

func (p *Pass) checkHotBody(fname string, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CompositeLit:
			t := p.TypeOf(n)
			if t == nil {
				return true
			}
			switch t.Underlying().(type) {
			case *types.Map:
				p.Reportf(n.Pos(), "hotpath %s: map literal allocates", fname)
			case *types.Slice:
				p.Reportf(n.Pos(), "hotpath %s: slice literal allocates", fname)
			}
		case *ast.FuncLit:
			if capt := p.capturedVars(n); len(capt) > 0 {
				p.Reportf(n.Pos(), "hotpath %s: closure captures %s and allocates its context", fname, strings.Join(capt, ", "))
			}
		case *ast.BinaryExpr:
			if n.Op != token.ADD {
				return true
			}
			if tv, ok := p.Info.Types[n]; ok && tv.Value == nil {
				if b, ok := tv.Type.Underlying().(*types.Basic); ok && b.Info()&types.IsString != 0 {
					p.Reportf(n.Pos(), "hotpath %s: string concatenation allocates", fname)
					// Nested concats share one diagnostic.
					return false
				}
			}
		case *ast.CallExpr:
			p.checkHotCall(fname, n)
		}
		return true
	})
}

func (p *Pass) checkHotCall(fname string, call *ast.CallExpr) {
	// Explicit conversion T(x)?
	if tv, ok := p.Info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && types.IsInterface(tv.Type) {
			p.reportIfaceConv(fname, call.Args[0], tv.Type, "conversion")
		}
		return
	}
	// Builtins.
	if id, ok := call.Fun.(*ast.Ident); ok {
		if _, isBuiltin := p.objOf(id).(*types.Builtin); isBuiltin {
			if id.Name == "make" && len(call.Args) > 0 {
				if t := p.TypeOf(call); t != nil {
					switch t.Underlying().(type) {
					case *types.Map, *types.Slice, *types.Chan:
						p.Reportf(call.Pos(), "hotpath %s: make allocates", fname)
					}
				}
			}
			return
		}
	}
	// fmt anywhere in a hot path means both formatting work and
	// interface-boxed arguments.
	if fn := p.calleeFunc(call); fn != nil && fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		p.Reportf(call.Pos(), "hotpath %s: fmt.%s allocates (formatting state and boxed arguments)", fname, fn.Name())
		return
	}
	// Implicit interface conversions at call boundaries.
	sig, ok := p.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				continue // passing a slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil || !types.IsInterface(pt) {
			continue
		}
		p.reportIfaceConv(fname, arg, pt, "implicit conversion")
	}
}

// reportIfaceConv flags value-to-interface conversions that box. Already
// interface-typed values, pointers and other word-sized reference types
// (chan, map, func, unsafe.Pointer), and untyped nil do not allocate.
func (p *Pass) reportIfaceConv(fname string, arg ast.Expr, target types.Type, how string) {
	tv, ok := p.Info.Types[arg]
	if !ok || tv.IsNil() {
		return
	}
	at := tv.Type
	if at == nil || types.IsInterface(at) {
		return
	}
	switch u := at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // word-sized reference values fit the interface word
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return
		}
	}
	p.Reportf(arg.Pos(), "hotpath %s: %s of %s to %s boxes the value and allocates", fname, how, at, target)
}

// capturedVars lists variables a func literal references that are
// declared outside it (and below package scope): the compiler must
// materialize a closure context for these.
func (p *Pass) capturedVars(lit *ast.FuncLit) []string {
	seen := make(map[types.Object]bool)
	var out []string
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := p.Info.Uses[id].(*types.Var)
		if !ok || v.IsField() || seen[v] {
			return true
		}
		if v.Parent() == nil || v.Parent() == types.Universe || v.Parent() == p.Pkg.Scope() {
			return true
		}
		if v.Pos() >= lit.Pos() && v.Pos() <= lit.End() {
			return true // declared inside the literal (params included)
		}
		seen[v] = true
		out = append(out, v.Name())
		return true
	})
	return out
}
