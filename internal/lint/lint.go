// Package lint is the project-invariant analyzer suite behind cmd/lwlint.
//
// The correctness of this codebase rests on contracts the Go compiler
// cannot see: all randomness flows through sim.Substream so internal/par
// fan-outs are bit-identical at any worker count, deterministic packages
// never read wall-clock time or iterate maps into results, the
// Injector→Manager lock order keeps fault injection from deadlocking the
// reconciler, and a handful of hot paths must stay at 0 allocs/op. Each
// contract here is an Analyzer: a pure function from a type-checked
// package to diagnostics. The driver loads the module (see load.go), runs
// the catalog, applies //lwlint:ignore suppressions, and reports
// machine-readable findings. DESIGN.md §15 is the human-readable catalog.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one finding, addressed by resolved source position.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Analyzer string         `json:"analyzer"`
	Message  string         `json:"message"`
}

// String renders the canonical machine-readable form:
// file:line: [analyzer] message.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: [%s] %s", d.File, d.Line, d.Analyzer, d.Message)
}

// Analyzer is one invariant checker. Run inspects a single type-checked
// package through the Pass and reports findings; it must not retain the
// pass or depend on the order packages are analyzed in.
type Analyzer struct {
	// Name is the catalog key: it appears in diagnostics and is the token
	// //lwlint:ignore suppressions name.
	Name string
	// Doc is a one-paragraph statement of the contract enforced.
	Doc string
	Run func(*Pass)
}

// Pass hands an analyzer one fully type-checked package.
type Pass struct {
	Cfg        *Config
	Fset       *token.FileSet
	Files      []*ast.File
	ImportPath string
	Pkg        *types.Package
	Info       *types.Info

	analyzer *Analyzer
	diags    *[]Diagnostic
	relFile  func(token.Position) string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	file := position.Filename
	if p.relFile != nil {
		file = p.relFile(position)
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      position,
		File:     file,
		Line:     position.Line,
		Col:      position.Column,
		Analyzer: p.analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// TypeOf resolves the static type of an expression, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type { return p.Info.TypeOf(e) }

// PkgNameOf resolves a selector like time.Now to the imported package
// path of its qualifier, or "" when the qualifier is not a package name.
func (p *Pass) PkgNameOf(sel *ast.SelectorExpr) string {
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return ""
	}
	if pn, ok := p.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// LockClass declares one mutex in the project lock-order table. Ranks
// ascend along the allowed acquisition order: holding rank r, a goroutine
// may only acquire ranks strictly greater than r.
type LockClass struct {
	// Type is the owning named type, as "importpath.TypeName".
	Type string
	// Field is the sync.Mutex / sync.RWMutex field name.
	Field string
	// Rank orders acquisition; lower ranks are acquired first.
	Rank int
	// Methods marks classes whose exported methods acquire the lock, so
	// cross-package calls into the type count as acquisitions even though
	// the analyzer cannot see the callee body.
	Methods bool
}

// Config carries the project contracts the analyzers enforce. Tests
// substitute synthetic configs; the real one is DefaultConfig.
type Config struct {
	// ModulePath is the module's import-path prefix.
	ModulePath string
	// SimPackage is the only package allowed to own raw RNG sources.
	SimPackage string
	// Deterministic lists import paths whose exported results must be a
	// pure function of explicit seeds (the internal/par replay contract).
	Deterministic []string
	// WallClockFiles lists module-relative files inside deterministic
	// packages that are wall-clock runners by design and exempt from the
	// walltime analyzer.
	WallClockFiles []string
	// LockOrder is the declared mutex acquisition order.
	LockOrder []LockClass
	// FsyncPackages lists import paths where an unchecked Sync/Close
	// error on a durable file is a durability bug, not noise.
	FsyncPackages []string
}

// IsDeterministic reports whether the import path is under the
// deterministic contract.
func (c *Config) IsDeterministic(path string) bool {
	for _, p := range c.Deterministic {
		if path == p {
			return true
		}
	}
	return false
}

func (c *Config) inFsyncScope(path string) bool {
	for _, p := range c.FsyncPackages {
		if path == p {
			return true
		}
	}
	return false
}

// DefaultConfig is the lightwave project's contract catalog. Every entry
// names where the contract came from; DESIGN.md §15 carries the prose.
func DefaultConfig() Config {
	return Config{
		ModulePath: "lightwave",
		SimPackage: "lightwave/internal/sim",
		Deterministic: []string{
			"lightwave/internal/dcn",
			"lightwave/internal/sim",
			"lightwave/internal/par",
			"lightwave/internal/avail",
			"lightwave/internal/te",
			"lightwave/internal/sched",
			"lightwave/internal/chaos",
			"lightwave/internal/mlperf",
		},
		WallClockFiles: []string{
			// The TE runner is the wall-clock seam between the
			// deterministic loop and the daemons.
			"internal/te/runner.go",
			// Crash-restart drives a real SIGKILL'd process; its waits
			// are wall-clock by nature.
			"internal/chaos/crashrestart.go",
		},
		LockOrder: []LockClass{
			// ctlrpc handlers never nest into the injector or manager
			// while holding Server.mu today; ranking it first declares
			// that any future nesting must keep it outermost.
			{Type: "lightwave/internal/ctlrpc.Server", Field: "mu", Rank: 1},
			// PR 5 contract: injection takes Injector.mu then calls the
			// manager; the manager never calls back into chaos.
			{Type: "lightwave/internal/chaos.Injector", Field: "mu", Rank: 2, Methods: true},
			{Type: "lightwave/internal/fleet.Manager", Field: "mu", Rank: 3, Methods: true},
		},
		FsyncPackages: []string{
			"lightwave/internal/wal",
			"lightwave/cmd/lwfd",
			"lightwave/cmd/lwfleetd",
		},
	}
}

// Analyzers returns the full catalog in reporting order.
func Analyzers() []*Analyzer {
	return []*Analyzer{
		AnalyzerSimrand,
		AnalyzerWalltime,
		AnalyzerMaprange,
		AnalyzerLocknest,
		AnalyzerHotalloc,
		AnalyzerFsyncerr,
	}
}

// suppression is one parsed //lwlint:ignore annotation.
type suppression struct {
	file      string // resolved filename (as in token.Position)
	line      int    // the annotated source line
	analyzers []string
	reason    string
	pos       token.Pos
}

const (
	ignorePrefix  = "//lwlint:ignore"
	hotpathMarker = "//lwlint:hotpath"
)

// parseSuppressions scans a file's comments for //lwlint:ignore
// annotations. A trailing annotation suppresses its own line; a
// standalone annotation suppresses the line below it. Malformed
// annotations (no analyzer, no reason, unknown analyzer) are themselves
// diagnostics: a suppression that silently fails to bind is worse than a
// loud finding.
func parseSuppressions(fset *token.FileSet, f *ast.File, known map[string]bool, report func(token.Pos, string)) []suppression {
	var out []suppression
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			text := c.Text
			if !strings.HasPrefix(text, ignorePrefix) {
				continue
			}
			rest := strings.TrimPrefix(text, ignorePrefix)
			if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
				continue // e.g. //lwlint:ignorexyz — not ours
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				report(c.Pos(), "suppression names no analyzer: //lwlint:ignore <analyzer>[,<analyzer>] <reason>")
				continue
			}
			names := strings.Split(fields[0], ",")
			bad := false
			for _, n := range names {
				if !known[n] {
					report(c.Pos(), fmt.Sprintf("suppression names unknown analyzer %q", n))
					bad = true
				}
			}
			if bad {
				continue
			}
			reason := strings.TrimSpace(strings.TrimPrefix(strings.TrimSpace(rest), fields[0]))
			if reason == "" {
				report(c.Pos(), fmt.Sprintf("suppression of %s needs a written reason", fields[0]))
				continue
			}
			out = append(out, suppression{
				file:      fset.Position(c.Pos()).Filename,
				line:      fset.Position(c.Pos()).Line,
				analyzers: names,
				reason:    reason,
				pos:       c.Pos(),
			})
		}
	}
	return out
}

// applySuppressions drops diagnostics covered by an annotation on the
// same line or the line directly above.
func applySuppressions(diags []Diagnostic, sups []suppression) []Diagnostic {
	if len(sups) == 0 {
		return diags
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := make(map[key]bool)
	for _, s := range sups {
		for _, a := range s.analyzers {
			covered[key{s.file, s.line, a}] = true
			covered[key{s.file, s.line + 1, a}] = true
		}
	}
	kept := diags[:0]
	for _, d := range diags {
		if covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		kept = append(kept, d)
	}
	return kept
}

// RunPackage runs the analyzers over one loaded package, applying
// suppressions, and returns sorted diagnostics. relFile, when non-nil,
// rewrites reported filenames (the driver makes them module-relative).
func RunPackage(cfg *Config, pkg *Package, analyzers []*Analyzer, relFile func(token.Position) string) []Diagnostic {
	// Suppressions may name any catalog analyzer, not just the ones this
	// run executes: a single-analyzer run (e.g. the simrand-only policy
	// test) must not misreport the others' annotations as unknown.
	known := make(map[string]bool, len(analyzers))
	for _, a := range Analyzers() {
		known[a.Name] = true
	}
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Cfg:        cfg,
			Fset:       pkg.Fset,
			Files:      pkg.Files,
			ImportPath: pkg.ImportPath,
			Pkg:        pkg.Types,
			Info:       pkg.Info,
			analyzer:   a,
			diags:      &diags,
			relFile:    relFile,
		}
		a.Run(pass)
	}
	// Suppression syntax errors report under the pseudo-analyzer name
	// "lwlint" and cannot themselves be suppressed.
	meta := &Pass{
		Cfg: cfg, Fset: pkg.Fset, Files: pkg.Files, ImportPath: pkg.ImportPath,
		Pkg: pkg.Types, Info: pkg.Info,
		analyzer: &Analyzer{Name: "lwlint"}, diags: &diags, relFile: relFile,
	}
	var sups []suppression
	for _, f := range pkg.Files {
		sups = append(sups, parseSuppressions(pkg.Fset, f, known, func(pos token.Pos, msg string) {
			meta.Reportf(pos, "%s", msg)
		})...)
	}
	diags = applySuppressions(diags, sups)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// Run loads the module packages matching patterns and runs the analyzer
// catalog over each, returning all surviving diagnostics sorted by
// position. It is the programmatic equivalent of `lwlint <patterns>`.
func Run(root string, patterns []string, cfg Config, analyzers []*Analyzer) ([]Diagnostic, error) {
	pkgs, err := LoadModule(root, patterns)
	if err != nil {
		return nil, err
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		all = append(all, RunPackage(&cfg, pkg, analyzers, moduleRelative(root))...)
	}
	return all, nil
}
