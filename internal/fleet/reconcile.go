package fleet

import (
	"fmt"
	"sort"
	"time"

	"lightwave/internal/sim"
	"lightwave/internal/telemetry"
)

// reconcileResult reports what one reconcile pass did.
type reconcileResult struct {
	applied  []string // desired slices now realized
	removed  []string // slices destroyed
	deferred int      // new slices held back by an OCS drain
}

// worker is one pod's reconcile loop: wait for a kick, reconcile until
// converged, backing off with jitter between failed attempts and
// quarantining the pod when the retry budget is exhausted.
func (m *Manager) worker(p *pod, rngSeed uint64) {
	defer m.wg.Done()
	rng := sim.NewRand(rngSeed)
	backoff := m.opts.BaseBackoff
	for {
		select {
		case <-m.done:
			return
		case <-p.stop:
			return
		case <-p.kick:
		}
		for {
			m.mu.Lock()
			if p.quarantined || !p.dirty {
				m.mu.Unlock()
				break
			}
			gen := p.gen
			desired := make(map[string]SliceIntent, len(p.desired))
			for name, in := range p.desired {
				desired[name] = in
			}
			drained := p.drained
			ocsDrained := len(p.drainedOCS) > 0
			m.mu.Unlock()

			start := time.Now()
			res, err := reconcile(p.backend, desired, drained, ocsDrained)
			p.latency.Observe(time.Since(start).Seconds())
			p.reconciles.Inc()

			if err == nil {
				if m.finishPass(p, gen, res, drained) {
					backoff = m.opts.BaseBackoff
					break
				}
				continue // intent changed mid-pass: re-reconcile now
			}

			quarantined := m.recordFailure(p, err)
			if quarantined {
				if m.opts.Alerts != nil {
					m.opts.Alerts.Post(telemetry.Alert{
						Source:   "fleet/" + p.name,
						Severity: telemetry.Critical,
						Message:  fmt.Sprintf("pod quarantined after %d consecutive reconcile failures: %v", m.opts.QuarantineAfter, err),
					})
				}
				break
			}
			m.backoffs.Inc()
			// ±50% jitter decorrelates pods retrying a shared-cause fault.
			d := time.Duration((0.5 + rng.Float64()) * float64(backoff))
			backoff = min(2*backoff, m.opts.MaxBackoff)
			select {
			case <-m.done:
				return
			case <-p.stop:
				return
			case <-time.After(d):
			}
		}
	}
}

// finishPass publishes the outcome of a successful reconcile. It reports
// false when the intent changed while the pass ran, in which case the
// worker must reconcile again from a fresh snapshot.
func (m *Manager) finishPass(p *pod, gen uint64, res reconcileResult, drained bool) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p.failures = 0
	p.lastErr = ""
	if p.gen != gen {
		return false
	}
	applied := make(map[string]bool, len(res.applied))
	for _, name := range res.applied {
		applied[name] = true
	}
	for name := range p.pendingReady {
		if applied[name] {
			delete(p.pendingReady, name)
			m.emitLocked(Event{Pod: p.name, Type: EventSliceReady, Slice: name})
		}
	}
	for name := range p.pendingGone {
		delete(p.pendingGone, name)
		m.emitLocked(Event{Pod: p.name, Type: EventSliceRemoved, Slice: name})
	}
	if res.deferred > 0 {
		// Not converged, but not a failure either: the pod stays dirty and
		// re-reconciles when the OCS drain lifts.
		m.emitLocked(Event{Pod: p.name, Type: EventDeferred,
			Detail: fmt.Sprintf("%d slices await ocs undrain", res.deferred)})
		return true
	}
	if p.dirty {
		m.convergence.Observe(time.Since(p.dirtySince).Seconds())
		p.dirty = false
		m.queueDepth.Set(float64(m.dirtyLocked()))
	}
	detail := fmt.Sprintf("%d slices", len(applied))
	if drained {
		detail = "drained"
	}
	if p.recovering {
		// The pod was quarantined, the quarantine was released, and it has
		// now reconciled back to its intent: the recovery edge, distinct
		// from an ordinary convergence so operators (and internal/chaos's
		// MTTR accounting) can see faults close out.
		p.recovering = false
		m.journalDerivedLocked(JournalEntry{Op: OpRecover, Pod: p.name, Detail: detail})
		m.emitLocked(Event{Pod: p.name, Type: EventRecovered, Detail: detail})
	}
	m.emitLocked(Event{Pod: p.name, Type: EventConverged, Detail: detail})
	return true
}

// recordFailure counts one failed attempt and quarantines the pod when the
// consecutive-failure budget is spent. Reports whether it quarantined.
func (m *Manager) recordFailure(p *pod, err error) bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	p.failures++
	p.lastErr = err.Error()
	m.retries.Inc()
	p.retries.Inc()
	m.emitLocked(Event{Pod: p.name, Type: EventReconcileError, Detail: err.Error()})
	if p.failures < m.opts.QuarantineAfter {
		return false
	}
	p.quarantined = true
	m.journalDerivedLocked(JournalEntry{Op: OpQuarantine, Pod: p.name, Detail: err.Error()})
	m.quarantines.Inc()
	m.quarantinedPods.Set(float64(m.quarantinedLocked()))
	m.emitLocked(Event{Pod: p.name, Type: EventQuarantined, Detail: err.Error()})
	return true
}

// reconcile drives a backend toward the desired slice set: destroy what is
// no longer desired, then ensure what is. A pod drain empties the desired
// set; an OCS drain defers *new* slices while leaving existing ones alone.
func reconcile(b Backend, desired map[string]SliceIntent, drained, ocsDrained bool) (reconcileResult, error) {
	var res reconcileResult
	if drained {
		desired = nil
	}
	actual := make(map[string]bool)
	for _, name := range b.Slices() {
		actual[name] = true
	}

	var extra []string
	for name := range actual {
		if _, want := desired[name]; !want {
			extra = append(extra, name)
		}
	}
	sort.Strings(extra)
	for _, name := range extra {
		if err := b.Destroy(name); err != nil {
			return res, fmt.Errorf("destroy %q: %w", name, err)
		}
		res.removed = append(res.removed, name)
	}

	names := make([]string, 0, len(desired))
	for name := range desired {
		names = append(names, name)
	}
	sort.Strings(names)
	// Ensure with a retry sweep: slice migrations can hand cubes from one
	// slice to another (defrag compaction, failure swaps), so an ensure may
	// only become satisfiable after a later ensure in the same pass frees
	// its cubes. Sweep the blocked set until it drains or stops shrinking;
	// only a genuinely stuck remainder fails the pass.
	pending := names
	for len(pending) > 0 {
		var blocked []string
		var firstErr error
		for _, name := range pending {
			in := desired[name]
			if ocsDrained && !actual[name] {
				res.deferred++
				continue
			}
			if _, err := b.Ensure(in.Name, in.Shape, in.Cubes); err != nil {
				blocked = append(blocked, name)
				if firstErr == nil {
					firstErr = fmt.Errorf("ensure %q: %w", name, err)
				}
				continue
			}
			res.applied = append(res.applied, name)
		}
		if len(blocked) == len(pending) {
			return res, firstErr
		}
		pending = blocked
	}
	return res, nil
}
