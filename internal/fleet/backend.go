package fleet

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"lightwave/internal/core"
	"lightwave/internal/sched"
	"lightwave/internal/topo"
)

// PodInfo is a backend's observable state, used for status reporting.
type PodInfo struct {
	InstalledCubes int
	FreeCubes      int
	Slices         []string
	Circuits       int
}

// Backend is the per-pod control surface the reconciler drives. Every
// method must be idempotent and safe for concurrent use: one reconcile
// worker mutates the pod while status snapshots read it.
type Backend interface {
	// Ensure makes the named slice exist with the given shape; an empty
	// cube list lets the backend place the slice. Reports whether any
	// hardware state changed.
	Ensure(name string, shape topo.Shape, cubes []int) (changed bool, err error)
	// Destroy tears a slice down; destroying an absent slice is a no-op.
	Destroy(name string) error
	// Slices returns the names of the realized slices, sorted.
	Slices() []string
	// Info snapshots the pod for status reporting.
	Info() PodInfo
}

// FabricBackend adapts a core.Fabric (which is not concurrency-safe) to the
// Backend interface, serializing access with a mutex and delegating
// placement of un-pinned intents to a sched.Placer over the live free-cube
// set.
type FabricBackend struct {
	mu      sync.Mutex
	f       *core.Fabric
	placer  sched.Placer
	nextJob int
}

// NewFabricBackend wraps a fabric; a nil placer defaults to
// sched.Reconfigurable (any free cubes — the lightwave fabric connects them
// regardless of position).
func NewFabricBackend(f *core.Fabric, placer sched.Placer) *FabricBackend {
	if placer == nil {
		placer = sched.Reconfigurable{}
	}
	return &FabricBackend{f: f, placer: placer}
}

// Fabric returns the wrapped fabric. Callers must not mutate it while the
// backend is attached to a running Manager.
func (b *FabricBackend) Fabric() *core.Fabric { return b.f }

// Ensure implements Backend.
func (b *FabricBackend) Ensure(name string, shape topo.Shape, cubes []int) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(cubes) > 0 {
		// Pinned placement. A changed cube set is a migration: tear the old
		// slice down before recreating (checkpoint/restore semantics), so
		// chained cube handoffs between slices — even cyclic ones from a
		// compaction pass — unwind across the reconciler's ensure sweeps.
		if existing, err := b.f.GetSlice(name); err == nil && !sameCubes(existing.Cubes, cubes) {
			if derr := b.f.DestroySlice(name); derr != nil {
				return false, derr
			}
			_, _, err := b.f.EnsureSlice(name, shape, cubes)
			return true, err
		}
	}
	if len(cubes) == 0 {
		existing, err := b.f.GetSlice(name)
		switch {
		case err == nil && existing.Shape.Cubes() == shape.Cubes():
			// Same cube count: EnsureSlice reuses the current cubes
			// (reshaping in place if the shape changed).
		default:
			// New slice, or a resize that needs fresh placement.
			if err == nil {
				if derr := b.f.DestroySlice(name); derr != nil {
					return false, derr
				}
			}
			placed, perr := b.place(name, shape.Cubes())
			if perr != nil {
				return err == nil, perr
			}
			cubes = placed
		}
	}
	_, changed, err := b.f.EnsureSlice(name, shape, cubes)
	return changed, err
}

// sameCubes reports whether two cube lists are the same set.
func sameCubes(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	for i := range as {
		if as[i] != bs[i] {
			return false
		}
	}
	return true
}

// place picks cubes for a new slice by mirroring the fabric's free-cube set
// into a sched.Pod and running the placement policy over it.
func (b *FabricBackend) place(name string, n int) ([]int, error) {
	free := make(map[int]bool)
	for _, c := range b.f.FreeCubes() {
		free[c] = true
	}
	mirror := sched.FullPod()
	for c := 0; c < mirror.Cubes(); c++ {
		if !free[c] {
			if _, _, err := mirror.Fail(c); err != nil {
				return nil, err
			}
		}
	}
	b.nextJob++
	cubes, err := b.placer.Place(mirror, b.nextJob, n)
	if err != nil {
		return nil, fmt.Errorf("fleet: placing %q (%d cubes, policy %s): %w",
			name, n, b.placer.Name(), err)
	}
	return cubes, nil
}

// FailCube marks a cube failed on the live fabric, mutex-serialized against
// the reconcile worker. The fabric auto-swaps a spare into any slice that
// owned the cube; the return value is the replacement cube id, or -1 when
// the cube was unowned (see core.Fabric.MarkCubeFailed).
func (b *FabricBackend) FailCube(cube int) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.f.MarkCubeFailed(cube)
}

// RepairCube returns a failed cube to service on the live fabric.
func (b *FabricBackend) RepairCube(cube int) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.f.RepairCube(cube)
}

// CubeHealthy reports a cube's health on the live fabric.
func (b *FabricBackend) CubeHealthy(cube int) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.f.CubeHealthy(cube)
}

// Destroy implements Backend.
func (b *FabricBackend) Destroy(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if err := b.f.DestroySlice(name); err != nil && !errors.Is(err, core.ErrNoSlice) {
		return err
	}
	return nil
}

// Slices implements Backend.
func (b *FabricBackend) Slices() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var names []string
	for _, sl := range b.f.Slices() {
		names = append(names, sl.Name)
	}
	return names
}

// Info implements Backend.
func (b *FabricBackend) Info() PodInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	info := PodInfo{
		InstalledCubes: b.f.InstalledCubes(),
		FreeCubes:      len(b.f.FreeCubes()),
		Circuits:       b.f.TotalCircuits(),
	}
	for _, sl := range b.f.Slices() {
		info.Slices = append(info.Slices, sl.Name)
	}
	return info
}
