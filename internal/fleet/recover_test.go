package fleet

import (
	"errors"
	"testing"
	"time"

	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

// A quarantined pod whose backend heals must emit EventRecovered exactly
// once when it converges after UndrainPod — the fault-closure edge the
// chaos evaluator's MTTR accounting keys on — and an ordinary convergence
// must never emit it.
func TestQuarantineRecoveryEmitsRecovered(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewManager(fastOptions(reg))
	defer m.Close()
	b := newFakeBackend()
	if err := m.AddPod("pod0", b); err != nil {
		t.Fatal(err)
	}
	sub := m.Subscribe(256)
	defer sub.Close()
	col := &collector{sub: sub}

	// Healthy convergence first: no recovery event may appear.
	in := SliceIntent{Name: "s0", Shape: topo.Shape{X: 4, Y: 4, Z: 4}}
	if err := m.SetSliceIntent("pod0", in); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "pod0", EventConverged) >= 1
	})
	if n := countEvents(col.seen, "pod0", EventRecovered); n != 0 {
		t.Fatalf("healthy convergence emitted %d recovered events", n)
	}

	// Break the backend and push it into quarantine.
	b.setFail(errors.New("backend down"))
	if err := m.SetSliceIntent("pod0", SliceIntent{Name: "s1", Shape: topo.Shape{X: 4, Y: 4, Z: 4}}); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "pod0", EventQuarantined) >= 1
	})

	// Heal and release: the pod must converge and publish the distinct
	// recovery edge, before the convergence event.
	b.setFail(nil)
	if err := m.UndrainPod("pod0"); err != nil {
		t.Fatal(err)
	}
	evs := col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "pod0", EventRecovered) >= 1 &&
			countEvents(evs, "pod0", EventConverged) >= 2
	})
	if n := countEvents(evs, "pod0", EventRecovered); n != 1 {
		t.Fatalf("recovery emitted %d recovered events, want 1", n)
	}
	ri, ci := -1, -1
	for i, ev := range evs {
		if ev.Pod != "pod0" {
			continue
		}
		if ev.Type == EventRecovered {
			ri = i
		}
		if ev.Type == EventConverged && i > ri && ri >= 0 && ci < 0 {
			ci = i
		}
	}
	if ri < 0 || ci < 0 {
		t.Fatalf("recovered event not followed by converged: %+v", evs)
	}

	// Further healthy convergences must stay recovery-free.
	if err := m.SetSliceIntent("pod0", SliceIntent{Name: "s2", Shape: topo.Shape{X: 4, Y: 4, Z: 4}}); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "pod0", EventSliceReady) >= 3
	})
	if n := countEvents(col.seen, "pod0", EventRecovered); n != 1 {
		t.Fatalf("recovered events after later convergence: %d, want still 1", n)
	}
}

// UndrainPod on a pod that was never quarantined must not fabricate a
// recovery event.
func TestUndrainWithoutQuarantineNoRecovered(t *testing.T) {
	reg := telemetry.NewRegistry()
	m := NewManager(fastOptions(reg))
	defer m.Close()
	if err := m.AddPod("pod0", newFakeBackend()); err != nil {
		t.Fatal(err)
	}
	sub := m.Subscribe(256)
	defer sub.Close()
	col := &collector{sub: sub}
	if err := m.DrainPod("pod0"); err != nil {
		t.Fatal(err)
	}
	if err := m.UndrainPod("pod0"); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "pod0", EventUndrained) >= 1 &&
			countEvents(evs, "pod0", EventConverged) >= 1
	})
	if n := countEvents(col.seen, "pod0", EventRecovered); n != 0 {
		t.Fatalf("plain undrain emitted %d recovered events", n)
	}
}
