package fleet

import (
	"errors"
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

// fakeBackend is an in-memory Backend with injectable failures.
type fakeBackend struct {
	mu     sync.Mutex
	slices map[string]SliceIntent
	fail   error // non-nil: Ensure and Destroy fail
	calls  int
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{slices: make(map[string]SliceIntent)}
}

func (b *fakeBackend) setFail(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.fail = err
}

func (b *fakeBackend) Ensure(name string, shape topo.Shape, cubes []int) (bool, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.calls++
	if b.fail != nil {
		return false, b.fail
	}
	prev, ok := b.slices[name]
	next := SliceIntent{Name: name, Shape: shape, Cubes: append([]int(nil), cubes...)}
	b.slices[name] = next
	return !ok || prev.Shape != shape, nil
}

func (b *fakeBackend) Destroy(name string) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.calls++
	if b.fail != nil {
		return b.fail
	}
	delete(b.slices, name)
	return nil
}

func (b *fakeBackend) Slices() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	var names []string
	for n := range b.slices {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func (b *fakeBackend) Info() PodInfo {
	return PodInfo{InstalledCubes: 64, FreeCubes: 64 - len(b.Slices()), Slices: b.Slices()}
}

func fastOptions(reg *telemetry.Registry) Options {
	return Options{
		Metrics:         reg,
		BaseBackoff:     time.Millisecond,
		MaxBackoff:      8 * time.Millisecond,
		QuarantineAfter: 3,
		Seed:            42,
	}
}

// collector accumulates a subscription's events across successive waits so
// predicates can count cumulatively.
type collector struct {
	sub  *Subscription
	seen []Event
}

// waitFor drains the subscription until pred over all events seen so far is
// satisfied or the deadline hits, returning the cumulative event list.
func (c *collector) waitFor(t *testing.T, timeout time.Duration, pred func([]Event) bool) []Event {
	t.Helper()
	deadline := time.After(timeout)
	for {
		if pred(c.seen) {
			return c.seen
		}
		select {
		case ev, ok := <-c.sub.Events():
			if !ok {
				t.Fatalf("subscription closed; saw %d events", len(c.seen))
			}
			c.seen = append(c.seen, ev)
		case <-deadline:
			t.Fatalf("timeout; saw events: %+v", c.seen)
		}
	}
}

func countEvents(evs []Event, pod string, typ EventType) int {
	n := 0
	for _, ev := range evs {
		if (pod == "" || ev.Pod == pod) && ev.Type == typ {
			n++
		}
	}
	return n
}

func TestReconcileConverges(t *testing.T) {
	m := NewManager(fastOptions(nil))
	defer m.Close()
	b := newFakeBackend()
	if err := m.AddPod("p0", b); err != nil {
		t.Fatal(err)
	}
	sub := m.Subscribe(64)
	defer sub.Close()
	col := &collector{sub: sub}

	if err := m.SetSliceIntent("p0", SliceIntent{Name: "a", Shape: topo.Shape{X: 4, Y: 4, Z: 8}}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetSliceIntent("p0", SliceIntent{Name: "b", Shape: topo.Shape{X: 4, Y: 4, Z: 4}}); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "p0", EventSliceReady) >= 2 &&
			countEvents(evs, "p0", EventConverged) >= 1
	})
	if got := b.Slices(); len(got) != 2 {
		t.Fatalf("backend slices = %v", got)
	}
	ps, err := m.PodStatus("p0")
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Converged || len(ps.DesiredSlices) != 2 || len(ps.ActualSlices) != 2 {
		t.Fatalf("status = %+v", ps)
	}

	// Removal destroys and emits slice-removed.
	if err := m.RemoveSliceIntent("p0", "a"); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "p0", EventSliceRemoved) >= 1
	})
	if got := b.Slices(); len(got) != 1 || got[0] != "b" {
		t.Fatalf("backend slices after remove = %v", got)
	}
}

// TestFleetQuarantineAndConvergence is the acceptance scenario: intents for
// several pods applied concurrently with one persistently failing pod. The
// healthy pods must converge, the failing pod must be quarantined with its
// retries/backoffs visible in the registry, and a watch client must see a
// convergence event for every applied intent.
func TestFleetQuarantineAndConvergence(t *testing.T) {
	reg := telemetry.NewRegistry()
	var alerts []telemetry.Alert
	var alertMu sync.Mutex
	opts := fastOptions(reg)
	opts.Alerts = telemetry.SinkFunc(func(a telemetry.Alert) {
		alertMu.Lock()
		alerts = append(alerts, a)
		alertMu.Unlock()
	})
	m := NewManager(opts)
	defer m.Close()

	healthy := []string{"p0", "p1", "p2", "p3"}
	backends := make(map[string]*fakeBackend)
	for _, name := range healthy {
		backends[name] = newFakeBackend()
		if err := m.AddPod(name, backends[name]); err != nil {
			t.Fatal(err)
		}
	}
	bad := newFakeBackend()
	bad.setFail(errors.New("laser interlock tripped"))
	if err := m.AddPod("bad", bad); err != nil {
		t.Fatal(err)
	}

	sub := m.Subscribe(256)
	defer sub.Close()
	col := &collector{sub: sub}

	// Apply intents for every pod concurrently: two per healthy pod, one
	// for the failing pod.
	var wg sync.WaitGroup
	for _, name := range healthy {
		wg.Add(1)
		go func(pod string) {
			defer wg.Done()
			for i := 0; i < 2; i++ {
				in := SliceIntent{Name: fmt.Sprintf("job%d", i), Shape: topo.Shape{X: 4, Y: 4, Z: 4 * (i + 1)}}
				if err := m.SetSliceIntent(pod, in); err != nil {
					t.Error(err)
				}
			}
		}(name)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		if err := m.SetSliceIntent("bad", SliceIntent{Name: "doomed", Shape: topo.Shape{X: 4, Y: 4, Z: 4}}); err != nil {
			t.Error(err)
		}
	}()
	wg.Wait()

	evs := col.waitFor(t, 10*time.Second, func(evs []Event) bool {
		for _, name := range healthy {
			if countEvents(evs, name, EventSliceReady) < 2 {
				return false
			}
		}
		return countEvents(evs, "bad", EventQuarantined) >= 1
	})

	// (a) Healthy pods converged to intent.
	for _, name := range healthy {
		if got := backends[name].Slices(); len(got) != 2 {
			t.Errorf("pod %s slices = %v", name, got)
		}
		ps, err := m.PodStatus(name)
		if err != nil {
			t.Fatal(err)
		}
		if !ps.Converged || ps.Quarantined {
			t.Errorf("pod %s status = %+v", name, ps)
		}
	}

	// (b) The failing pod is quarantined, with backoff observable in the
	// registry.
	ps, err := m.PodStatus("bad")
	if err != nil {
		t.Fatal(err)
	}
	if !ps.Quarantined || ps.ConsecutiveFailures < 3 || ps.LastError == "" {
		t.Fatalf("bad pod status = %+v", ps)
	}
	if got := reg.Counter("fleet.pod.bad.retries_total").Value(); got < 3 {
		t.Errorf("bad pod retries = %d", got)
	}
	if got := reg.Counter("fleet.retries_total").Value(); got < 3 {
		t.Errorf("fleet retries = %d", got)
	}
	if got := reg.Counter("fleet.backoffs_total").Value(); got < 2 {
		t.Errorf("fleet backoffs = %d", got)
	}
	if got := reg.Counter("fleet.quarantines_total").Value(); got != 1 {
		t.Errorf("quarantines = %d", got)
	}
	if got := reg.Gauge("fleet.quarantined_pods").Value(); got != 1 {
		t.Errorf("quarantined gauge = %g", got)
	}
	text := reg.Text()
	for _, want := range []string{"fleet.retries_total", "fleet.backoffs_total", "fleet.quarantined_pods 1"} {
		if !strings.Contains(text, want) {
			t.Errorf("exposition missing %q:\n%s", want, text)
		}
	}
	alertMu.Lock()
	gotAlerts := len(alerts)
	alertMu.Unlock()
	if gotAlerts != 1 {
		t.Errorf("alerts = %d", gotAlerts)
	}

	// (c) The watch client saw a convergence event for every applied
	// intent (2 per healthy pod) — and none for the quarantined pod.
	for _, name := range healthy {
		if got := countEvents(evs, name, EventSliceReady); got != 2 {
			t.Errorf("pod %s slice-ready events = %d", name, got)
		}
	}
	if got := countEvents(evs, "bad", EventSliceReady); got != 0 {
		t.Errorf("quarantined pod got %d slice-ready events", got)
	}

	// Recovery: fix the backend, undrain to release the quarantine, and
	// the retained intent converges.
	bad.setFail(nil)
	if err := m.UndrainPod("bad"); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "bad", EventSliceReady) >= 1
	})
	if got := bad.Slices(); len(got) != 1 || got[0] != "doomed" {
		t.Fatalf("recovered pod slices = %v", got)
	}
	if got := reg.Gauge("fleet.quarantined_pods").Value(); got != 0 {
		t.Errorf("quarantined gauge after recovery = %g", got)
	}
}

func TestDrainUndrainPod(t *testing.T) {
	m := NewManager(fastOptions(nil))
	defer m.Close()
	b := newFakeBackend()
	if err := m.AddPod("p0", b); err != nil {
		t.Fatal(err)
	}
	sub := m.Subscribe(64)
	defer sub.Close()
	col := &collector{sub: sub}

	if err := m.SetSliceIntent("p0", SliceIntent{Name: "a", Shape: topo.Shape{X: 4, Y: 4, Z: 8}}); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "p0", EventSliceReady) >= 1
	})

	if err := m.DrainPod("p0"); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "p0", EventDrained) >= 1 && len(b.Slices()) == 0
	})
	ps, _ := m.PodStatus("p0")
	if !ps.Drained || len(ps.DesiredSlices) != 1 {
		t.Fatalf("drained status = %+v", ps)
	}

	if err := m.UndrainPod("p0"); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "p0", EventSliceReady) >= 2
	})
	if got := b.Slices(); len(got) != 1 {
		t.Fatalf("slices after undrain = %v", got)
	}
}

func TestDrainOCSDefersNewSlices(t *testing.T) {
	m := NewManager(fastOptions(nil))
	defer m.Close()
	b := newFakeBackend()
	if err := m.AddPod("p0", b); err != nil {
		t.Fatal(err)
	}
	sub := m.Subscribe(64)
	defer sub.Close()
	col := &collector{sub: sub}

	if err := m.SetSliceIntent("p0", SliceIntent{Name: "old", Shape: topo.Shape{X: 4, Y: 4, Z: 4}}); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "p0", EventSliceReady) >= 1
	})

	if err := m.DrainOCS("p0", 7); err != nil {
		t.Fatal(err)
	}
	if err := m.SetSliceIntent("p0", SliceIntent{Name: "new", Shape: topo.Shape{X: 4, Y: 4, Z: 4}}); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "p0", EventDeferred) >= 1
	})
	if got := b.Slices(); len(got) != 1 || got[0] != "old" {
		t.Fatalf("slices during ocs drain = %v", got)
	}
	ps, _ := m.PodStatus("p0")
	if ps.Converged || len(ps.DrainedOCS) != 1 || ps.DrainedOCS[0] != 7 {
		t.Fatalf("ocs-drained status = %+v", ps)
	}

	if err := m.UndrainOCS("p0", 7); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "p0", EventSliceReady) >= 2
	})
	if got := b.Slices(); len(got) != 2 {
		t.Fatalf("slices after ocs undrain = %v", got)
	}
}

func TestReplaceIntent(t *testing.T) {
	m := NewManager(fastOptions(nil))
	defer m.Close()
	b := newFakeBackend()
	if err := m.AddPod("p0", b); err != nil {
		t.Fatal(err)
	}
	sub := m.Subscribe(64)
	defer sub.Close()
	col := &collector{sub: sub}

	if err := m.ReplaceIntent("p0", []SliceIntent{
		{Name: "a", Shape: topo.Shape{X: 4, Y: 4, Z: 4}},
		{Name: "b", Shape: topo.Shape{X: 4, Y: 4, Z: 8}},
	}); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "p0", EventSliceReady) >= 2
	})
	if err := m.ReplaceIntent("p0", []SliceIntent{
		{Name: "c", Shape: topo.Shape{X: 4, Y: 4, Z: 4}},
	}); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 5*time.Second, func(evs []Event) bool {
		return countEvents(evs, "p0", EventSliceRemoved) >= 2 &&
			countEvents(evs, "p0", EventSliceReady) >= 3
	})
	if got := b.Slices(); len(got) != 1 || got[0] != "c" {
		t.Fatalf("slices after replace = %v", got)
	}
}

func TestIntentValidation(t *testing.T) {
	m := NewManager(fastOptions(nil))
	defer m.Close()
	if err := m.AddPod("p0", newFakeBackend()); err != nil {
		t.Fatal(err)
	}
	cases := []SliceIntent{
		{Name: "", Shape: topo.Shape{X: 4, Y: 4, Z: 4}},
		{Name: "odd", Shape: topo.Shape{X: 3, Y: 4, Z: 4}},
		{Name: "short", Shape: topo.Shape{X: 4, Y: 4, Z: 8}, Cubes: []int{0}},
		{Name: "range", Shape: topo.Shape{X: 4, Y: 4, Z: 4}, Cubes: []int{64}},
		{Name: "dup", Shape: topo.Shape{X: 4, Y: 4, Z: 8}, Cubes: []int{1, 1}},
	}
	for _, in := range cases {
		if err := m.SetSliceIntent("p0", in); !errors.Is(err, ErrBadIntent) {
			t.Errorf("intent %+v: err = %v", in, err)
		}
	}
	if err := m.SetSliceIntent("ghost", SliceIntent{Name: "a", Shape: topo.Shape{X: 4, Y: 4, Z: 4}}); !errors.Is(err, ErrNoPod) {
		t.Errorf("unknown pod: err = %v", err)
	}
	if err := m.AddPod("p0", newFakeBackend()); !errors.Is(err, ErrPodExists) {
		t.Errorf("duplicate pod: err = %v", err)
	}
	if err := m.DrainOCS("p0", 99); !errors.Is(err, ErrBadIntent) {
		t.Errorf("bad ocs: err = %v", err)
	}
}

func TestManagerCloseStopsWorkersAndSubs(t *testing.T) {
	m := NewManager(fastOptions(nil))
	if err := m.AddPod("p0", newFakeBackend()); err != nil {
		t.Fatal(err)
	}
	sub := m.Subscribe(4)
	m.Close()
	m.Close() // idempotent
	if _, ok := <-sub.Events(); ok {
		t.Fatal("subscription not closed")
	}
	if err := m.AddPod("p1", newFakeBackend()); !errors.Is(err, ErrClosed) {
		t.Fatalf("AddPod after close: %v", err)
	}
}
