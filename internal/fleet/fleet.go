// Package fleet is the multi-pod reconciliation control plane sitting above
// internal/core. The paper's Pod Manager (§4.2) drives many OCSes per pod
// across many pods, and §3.2.2 stresses that deep integration of control and
// monitoring "was essential given that the switches had a large blast
// radius". A Manager owns N pods (each behind a Backend, typically a
// core.Fabric), accepts *intents* — the desired slice set per pod plus
// drain/undrain of pods and individual OCSes — and continuously reconciles
// actual state toward intent:
//
//	intent store → sharded work queue → per-pod reconcile workers → events
//
// One worker per pod keeps pods independent; a failing operation is retried
// with exponential backoff and jitter; a pod whose reconcile keeps failing is
// quarantined and alerted rather than allowed to wedge the fleet. Every
// transition is published on a subscription event stream and instrumented
// through internal/telemetry.
package fleet

import (
	"errors"
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
	"time"

	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

// SliceIntent is the desired state of one slice on one pod.
type SliceIntent struct {
	Name  string
	Shape topo.Shape
	// Cubes optionally pins placement; empty lets the backend place the
	// slice on free cubes.
	Cubes []int
}

// Options parameterizes a Manager.
type Options struct {
	// Metrics receives fleet instrumentation; nil creates a private
	// registry (exposed via Metrics()).
	Metrics *telemetry.Registry
	// Alerts receives quarantine alerts; nil disables alerting.
	Alerts telemetry.AlertSink
	// BaseBackoff is the first retry delay after a failed reconcile
	// (default 50ms); each further failure doubles it up to MaxBackoff
	// (default 5s), with ±50% jitter.
	BaseBackoff time.Duration
	MaxBackoff  time.Duration
	// QuarantineAfter is the consecutive-failure count that quarantines a
	// pod (default 5).
	QuarantineAfter int
	// Seed perturbs the per-pod jitter RNGs.
	Seed uint64
	// Journal, when set, receives every intent-store mutation before it
	// is applied plus quarantine/recovery decisions (see journal.go).
	// Nil disables journaling.
	Journal Journal
}

// Errors returned by the manager.
var (
	ErrClosed      = errors.New("fleet: manager closed")
	ErrNoPod       = errors.New("fleet: no such pod")
	ErrPodExists   = errors.New("fleet: pod already exists")
	ErrBadIntent   = errors.New("fleet: invalid intent")
	ErrQuarantined = errors.New("fleet: pod quarantined")
)

// Manager is the fleet control plane. All methods are safe for concurrent
// use.
type Manager struct {
	opts Options

	mu      sync.Mutex
	pods    map[string]*pod
	subs    map[int]*Subscription
	nextSub int
	seq     uint64
	closed  bool
	done    chan struct{}
	wg      sync.WaitGroup

	queueDepth      *telemetry.Gauge
	quarantinedPods *telemetry.Gauge
	retries         *telemetry.Counter
	backoffs        *telemetry.Counter
	quarantines     *telemetry.Counter
	convergence     *telemetry.Distribution
	watchDropped    *telemetry.Counter
}

// pod is one reconcile shard. Mutable fields are guarded by Manager.mu; the
// backend serializes its own hardware access.
type pod struct {
	name    string
	backend Backend
	kick    chan struct{} // cap 1: pending-work signal
	stop    chan struct{} // closed by RemovePod to retire the worker

	desired      map[string]SliceIntent
	pendingReady map[string]bool // slices awaiting a converged event
	pendingGone  map[string]bool // removals awaiting a removed event
	drained      bool
	drainedOCS   map[int]bool
	quarantined  bool
	recovering   bool // quarantine released; next convergence is a recovery
	failures     int  // consecutive reconcile failures
	gen          uint64
	dirty        bool
	dirtySince   time.Time
	lastErr      string

	reconciles *telemetry.Counter
	retries    *telemetry.Counter
	latency    *telemetry.Distribution
}

// NewManager builds an empty fleet.
func NewManager(opts Options) *Manager {
	if opts.Metrics == nil {
		opts.Metrics = telemetry.NewRegistry()
	}
	if opts.BaseBackoff <= 0 {
		opts.BaseBackoff = 50 * time.Millisecond
	}
	if opts.MaxBackoff <= 0 {
		opts.MaxBackoff = 5 * time.Second
	}
	if opts.QuarantineAfter <= 0 {
		opts.QuarantineAfter = 5
	}
	reg := opts.Metrics
	return &Manager{
		opts: opts,
		pods: make(map[string]*pod),
		subs: make(map[int]*Subscription),
		done: make(chan struct{}),

		queueDepth:      reg.Gauge("fleet.queue_depth"),
		quarantinedPods: reg.Gauge("fleet.quarantined_pods"),
		retries:         reg.Counter("fleet.retries_total"),
		backoffs:        reg.Counter("fleet.backoffs_total"),
		quarantines:     reg.Counter("fleet.quarantines_total"),
		convergence:     reg.Distribution("fleet.convergence_seconds", 0.001, 0.01, 0.1, 1, 10, 60),
		watchDropped:    reg.Counter("fleet.watch_dropped_total"),
	}
}

// Metrics returns the registry the fleet is instrumented through.
func (m *Manager) Metrics() *telemetry.Registry { return m.opts.Metrics }

// AddPod registers a pod and starts its reconcile worker.
func (m *Manager) AddPod(name string, b Backend) error {
	if name == "" || b == nil {
		return fmt.Errorf("%w: pod needs a name and a backend", ErrBadIntent)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	if _, ok := m.pods[name]; ok {
		return fmt.Errorf("%w: %q", ErrPodExists, name)
	}
	if err := m.journalLocked(JournalEntry{Op: OpAddPod, Pod: name}); err != nil {
		return err
	}
	reg := m.opts.Metrics
	p := &pod{
		name:         name,
		backend:      b,
		kick:         make(chan struct{}, 1),
		stop:         make(chan struct{}),
		desired:      make(map[string]SliceIntent),
		pendingReady: make(map[string]bool),
		pendingGone:  make(map[string]bool),
		drainedOCS:   make(map[int]bool),

		reconciles: reg.Counter("fleet.pod." + name + ".reconciles_total"),
		retries:    reg.Counter("fleet.pod." + name + ".retries_total"),
		latency:    reg.Distribution("fleet.pod."+name+".reconcile_seconds", 0.0001, 0.001, 0.01, 0.1, 1, 10),
	}
	m.pods[name] = p
	h := fnv.New64a()
	h.Write([]byte(name))
	rngSeed := m.opts.Seed ^ h.Sum64()
	m.wg.Add(1)
	go m.worker(p, rngSeed)
	return nil
}

// RemovePod retires a pod: its worker stops, its intents are dropped, and
// further calls naming it return ErrNoPod. The backend is left exactly as
// the last reconcile pass left it — decommissioning hardware is the
// operator's problem, not the intent store's.
func (m *Manager) RemovePod(name string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.closed {
		return ErrClosed
	}
	p, err := m.podLocked(name)
	if err != nil {
		return err
	}
	if err := m.journalLocked(JournalEntry{Op: OpRemovePod, Pod: name}); err != nil {
		return err
	}
	delete(m.pods, name)
	close(p.stop)
	m.emitLocked(Event{Pod: name, Type: EventPodRemoved})
	m.queueDepth.Set(float64(m.dirtyLocked()))
	m.quarantinedPods.Set(float64(m.quarantinedLocked()))
	return nil
}

// Pods returns the pod names, sorted.
func (m *Manager) Pods() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	names := make([]string, 0, len(m.pods))
	for n := range m.pods {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Close stops every worker and closes all subscriptions. Safe to call more
// than once.
func (m *Manager) Close() {
	m.mu.Lock()
	if m.closed {
		m.mu.Unlock()
		return
	}
	m.closed = true
	close(m.done)
	m.mu.Unlock()
	m.wg.Wait()
	m.mu.Lock()
	for id, s := range m.subs {
		delete(m.subs, id)
		close(s.ch)
	}
	m.mu.Unlock()
}

func (m *Manager) podLocked(name string) (*pod, error) {
	p, ok := m.pods[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoPod, name)
	}
	return p, nil
}

func validateIntent(in SliceIntent) error {
	if in.Name == "" {
		return fmt.Errorf("%w: slice needs a name", ErrBadIntent)
	}
	if !in.Shape.Valid() {
		return fmt.Errorf("%w: shape %s is not a multiple-of-%d torus", ErrBadIntent, in.Shape, topo.CubeDim)
	}
	if len(in.Cubes) > 0 {
		if len(in.Cubes) != in.Shape.Cubes() {
			return fmt.Errorf("%w: shape %s needs %d cubes, got %d",
				ErrBadIntent, in.Shape, in.Shape.Cubes(), len(in.Cubes))
		}
		seen := make(map[int]bool, len(in.Cubes))
		for _, c := range in.Cubes {
			if c < 0 || c >= 64 {
				return fmt.Errorf("%w: cube %d out of range", ErrBadIntent, c)
			}
			if seen[c] {
				return fmt.Errorf("%w: duplicate cube %d", ErrBadIntent, c)
			}
			seen[c] = true
		}
	}
	return nil
}

// SetSliceIntent records the desired state of one slice and wakes the pod's
// reconciler. Applying an intent to a quarantined pod is accepted; the pod
// reconciles it after UndrainPod releases the quarantine.
func (m *Manager) SetSliceIntent(podName string, in SliceIntent) error {
	if err := validateIntent(in); err != nil {
		return err
	}
	in.Cubes = append([]int(nil), in.Cubes...)
	m.mu.Lock()
	defer m.mu.Unlock()
	p, err := m.podLocked(podName)
	if err != nil {
		return err
	}
	if err := m.journalLocked(JournalEntry{Op: OpSetSlice, Pod: podName, Slice: &in}); err != nil {
		return err
	}
	p.desired[in.Name] = in
	p.pendingReady[in.Name] = true
	delete(p.pendingGone, in.Name)
	m.emitLocked(Event{Pod: podName, Type: EventIntent, Slice: in.Name,
		Detail: fmt.Sprintf("desire %s", in.Shape)})
	m.markDirtyLocked(p)
	return nil
}

// RemoveSliceIntent drops a slice from the desired state; the reconciler
// destroys it. Removing an unknown slice is a no-op.
func (m *Manager) RemoveSliceIntent(podName, slice string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, err := m.podLocked(podName)
	if err != nil {
		return err
	}
	if _, ok := p.desired[slice]; !ok {
		return nil
	}
	if err := m.journalLocked(JournalEntry{Op: OpRemoveSlice, Pod: podName, Name: slice}); err != nil {
		return err
	}
	delete(p.desired, slice)
	delete(p.pendingReady, slice)
	p.pendingGone[slice] = true
	m.emitLocked(Event{Pod: podName, Type: EventIntent, Slice: slice, Detail: "remove"})
	m.markDirtyLocked(p)
	return nil
}

// ReplaceIntent swaps a pod's entire desired slice set.
func (m *Manager) ReplaceIntent(podName string, ins []SliceIntent) error {
	next := make(map[string]SliceIntent, len(ins))
	for _, in := range ins {
		if err := validateIntent(in); err != nil {
			return err
		}
		if _, dup := next[in.Name]; dup {
			return fmt.Errorf("%w: duplicate slice %q", ErrBadIntent, in.Name)
		}
		in.Cubes = append([]int(nil), in.Cubes...)
		next[in.Name] = in
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, err := m.podLocked(podName)
	if err != nil {
		return err
	}
	if m.opts.Journal != nil {
		ent := JournalEntry{Op: OpReplace, Pod: podName, Slices: make([]SliceIntent, 0, len(ins))}
		for _, in := range next {
			ent.Slices = append(ent.Slices, in)
		}
		sort.Slice(ent.Slices, func(i, j int) bool { return ent.Slices[i].Name < ent.Slices[j].Name })
		if err := m.journalLocked(ent); err != nil {
			return err
		}
	}
	for name := range p.desired {
		if _, keep := next[name]; !keep {
			p.pendingGone[name] = true
			delete(p.pendingReady, name)
		}
	}
	for name := range next {
		p.pendingReady[name] = true
		delete(p.pendingGone, name)
	}
	p.desired = next
	m.emitLocked(Event{Pod: podName, Type: EventIntent,
		Detail: fmt.Sprintf("replace with %d slices", len(next))})
	m.markDirtyLocked(p)
	return nil
}

// DrainPod empties a pod: the reconciler destroys every slice while intents
// are retained for UndrainPod.
func (m *Manager) DrainPod(podName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, err := m.podLocked(podName)
	if err != nil {
		return err
	}
	if p.drained {
		return nil
	}
	if err := m.journalLocked(JournalEntry{Op: OpDrainPod, Pod: podName}); err != nil {
		return err
	}
	p.drained = true
	m.emitLocked(Event{Pod: podName, Type: EventDrained})
	m.markDirtyLocked(p)
	return nil
}

// UndrainPod returns a pod to service, releasing any quarantine, and
// re-reconciles its retained intents.
func (m *Manager) UndrainPod(podName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, err := m.podLocked(podName)
	if err != nil {
		return err
	}
	if err := m.journalLocked(JournalEntry{Op: OpUndrainPod, Pod: podName}); err != nil {
		return err
	}
	wasQuarantined := p.quarantined
	p.drained = false
	p.quarantined = false
	p.failures = 0
	p.lastErr = ""
	for name := range p.desired {
		p.pendingReady[name] = true
	}
	if wasQuarantined {
		p.recovering = true
		m.quarantinedPods.Set(float64(m.quarantinedLocked()))
	}
	m.emitLocked(Event{Pod: podName, Type: EventUndrained})
	m.markDirtyLocked(p)
	return nil
}

// Poke marks a pod dirty without changing its intent — the hook external
// health probes (and internal/chaos's injector) use to demand a fresh
// reconcile pass when a backend is suspected dead. The pass either
// reconverges or starts the retry/quarantine path.
func (m *Manager) Poke(podName string) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, err := m.podLocked(podName)
	if err != nil {
		return err
	}
	m.markDirtyLocked(p)
	return nil
}

// DrainOCS marks one OCS of a pod as under maintenance: the reconciler stops
// composing *new* slices on the pod (they are deferred, not failed) while
// existing slices stay up.
func (m *Manager) DrainOCS(podName string, ocsID int) error {
	if ocsID < 0 || ocsID >= topo.NumOCS {
		return fmt.Errorf("%w: ocs %d out of range [0,%d)", ErrBadIntent, ocsID, topo.NumOCS)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	p, err := m.podLocked(podName)
	if err != nil {
		return err
	}
	if err := m.journalLocked(JournalEntry{Op: OpDrainOCS, Pod: podName, OCS: ocsID}); err != nil {
		return err
	}
	p.drainedOCS[ocsID] = true
	m.emitLocked(Event{Pod: podName, Type: EventDrained, Detail: fmt.Sprintf("ocs %d", ocsID)})
	m.markDirtyLocked(p)
	return nil
}

// UndrainOCS ends an OCS maintenance drain.
func (m *Manager) UndrainOCS(podName string, ocsID int) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, err := m.podLocked(podName)
	if err != nil {
		return err
	}
	if err := m.journalLocked(JournalEntry{Op: OpUndrainOCS, Pod: podName, OCS: ocsID}); err != nil {
		return err
	}
	delete(p.drainedOCS, ocsID)
	m.emitLocked(Event{Pod: podName, Type: EventUndrained, Detail: fmt.Sprintf("ocs %d", ocsID)})
	m.markDirtyLocked(p)
	return nil
}

// markDirtyLocked records pending work and wakes the pod's worker.
func (m *Manager) markDirtyLocked(p *pod) {
	p.gen++
	if !p.dirty {
		p.dirty = true
		p.dirtySince = time.Now()
	}
	m.queueDepth.Set(float64(m.dirtyLocked()))
	select {
	case p.kick <- struct{}{}:
	default:
	}
}

func (m *Manager) dirtyLocked() int {
	n := 0
	for _, p := range m.pods {
		if p.dirty {
			n++
		}
	}
	return n
}

func (m *Manager) quarantinedLocked() int {
	n := 0
	for _, p := range m.pods {
		if p.quarantined {
			n++
		}
	}
	return n
}

// PodStatus is a snapshot of one pod.
type PodStatus struct {
	Name                string
	Drained             bool
	DrainedOCS          []int
	Quarantined         bool
	Converged           bool
	ConsecutiveFailures int
	LastError           string
	DesiredSlices       []string
	ActualSlices        []string
	InstalledCubes      int
	FreeCubes           int
	Circuits            int
}

// Status is a snapshot of the fleet.
type Status struct {
	Pods            []PodStatus
	QueueDepth      int
	QuarantinedPods int
}

// Status snapshots every pod. Backend state is read outside the manager
// lock, so a pod mid-reconcile reports its in-flight actual state.
func (m *Manager) Status() Status {
	m.mu.Lock()
	st := Status{
		QueueDepth:      m.dirtyLocked(),
		QuarantinedPods: m.quarantinedLocked(),
	}
	type podRef struct {
		ps PodStatus
		b  Backend
	}
	refs := make([]podRef, 0, len(m.pods))
	for _, p := range m.pods {
		ps := PodStatus{
			Name:                p.name,
			Drained:             p.drained,
			Quarantined:         p.quarantined,
			Converged:           !p.dirty && !p.quarantined,
			ConsecutiveFailures: p.failures,
			LastError:           p.lastErr,
		}
		for o := range p.drainedOCS {
			ps.DrainedOCS = append(ps.DrainedOCS, o)
		}
		sort.Ints(ps.DrainedOCS)
		for name := range p.desired {
			ps.DesiredSlices = append(ps.DesiredSlices, name)
		}
		sort.Strings(ps.DesiredSlices)
		refs = append(refs, podRef{ps, p.backend})
	}
	m.mu.Unlock()

	sort.Slice(refs, func(i, j int) bool { return refs[i].ps.Name < refs[j].ps.Name })
	for i := range refs {
		info := refs[i].b.Info()
		refs[i].ps.ActualSlices = info.Slices
		refs[i].ps.InstalledCubes = info.InstalledCubes
		refs[i].ps.FreeCubes = info.FreeCubes
		refs[i].ps.Circuits = info.Circuits
		st.Pods = append(st.Pods, refs[i].ps)
	}
	return st
}

// PodStatus snapshots one pod.
func (m *Manager) PodStatus(podName string) (PodStatus, error) {
	for _, ps := range m.Status().Pods {
		if ps.Name == podName {
			return ps, nil
		}
	}
	return PodStatus{}, fmt.Errorf("%w: %q", ErrNoPod, podName)
}
