package fleet

import (
	"testing"
	"time"

	"lightwave/internal/core"
	"lightwave/internal/sched"
	"lightwave/internal/topo"
)

func fabricBackend(t *testing.T, cubes int, placer sched.Placer) *FabricBackend {
	t.Helper()
	f, err := core.New(core.DefaultConfig(cubes))
	if err != nil {
		t.Fatal(err)
	}
	return NewFabricBackend(f, placer)
}

func TestFabricBackendAutoPlacement(t *testing.T) {
	b := fabricBackend(t, 8, nil)
	changed, err := b.Ensure("j", topo.Shape{X: 4, Y: 4, Z: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("fresh ensure reported unchanged")
	}
	sl, err := b.Fabric().GetSlice("j")
	if err != nil {
		t.Fatal(err)
	}
	if len(sl.Cubes) != 2 {
		t.Fatalf("placed cubes = %v", sl.Cubes)
	}
	// Idempotent re-ensure.
	changed, err = b.Ensure("j", topo.Shape{X: 4, Y: 4, Z: 8}, nil)
	if err != nil || changed {
		t.Fatalf("re-ensure: changed=%v err=%v", changed, err)
	}
	info := b.Info()
	if info.InstalledCubes != 8 || info.FreeCubes != 6 || len(info.Slices) != 1 {
		t.Fatalf("info = %+v", info)
	}
}

func TestFabricBackendResizePlacesFreshCubes(t *testing.T) {
	b := fabricBackend(t, 8, nil)
	if _, err := b.Ensure("j", topo.Shape{X: 4, Y: 4, Z: 8}, nil); err != nil {
		t.Fatal(err)
	}
	// Growing the slice needs a new placement (2 → 4 cubes).
	changed, err := b.Ensure("j", topo.Shape{X: 4, Y: 4, Z: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("resize reported unchanged")
	}
	sl, err := b.Fabric().GetSlice("j")
	if err != nil {
		t.Fatal(err)
	}
	if len(sl.Cubes) != 4 || sl.Shape != (topo.Shape{X: 4, Y: 4, Z: 16}) {
		t.Fatalf("resized slice = %+v", sl)
	}
}

func TestFabricBackendPlacementExhaustion(t *testing.T) {
	b := fabricBackend(t, 2, nil)
	if _, err := b.Ensure("big", topo.Shape{X: 4, Y: 4, Z: 16}, nil); err == nil {
		t.Fatal("4-cube slice placed on a 2-cube pod")
	}
}

func TestFabricBackendExplicitCubesAndDestroy(t *testing.T) {
	b := fabricBackend(t, 8, sched.Contiguous{})
	changed, err := b.Ensure("j", topo.Shape{X: 4, Y: 4, Z: 8}, []int{5, 6})
	if err != nil || !changed {
		t.Fatalf("explicit ensure: changed=%v err=%v", changed, err)
	}
	sl, err := b.Fabric().GetSlice("j")
	if err != nil {
		t.Fatal(err)
	}
	if sl.Cubes[0] != 5 || sl.Cubes[1] != 6 {
		t.Fatalf("cubes = %v", sl.Cubes)
	}
	if err := b.Destroy("j"); err != nil {
		t.Fatal(err)
	}
	if err := b.Destroy("j"); err != nil {
		t.Fatalf("destroy of absent slice: %v", err)
	}
	if got := b.Slices(); len(got) != 0 {
		t.Fatalf("slices = %v", got)
	}
}

// TestManagerWithFabricBackends runs the reconcile loop against real
// fabrics end to end.
func TestManagerWithFabricBackends(t *testing.T) {
	m := NewManager(fastOptions(nil))
	defer m.Close()
	b0 := fabricBackend(t, 8, nil)
	b1 := fabricBackend(t, 8, nil)
	if err := m.AddPod("p0", b0); err != nil {
		t.Fatal(err)
	}
	if err := m.AddPod("p1", b1); err != nil {
		t.Fatal(err)
	}
	sub := m.Subscribe(64)
	defer sub.Close()
	col := &collector{sub: sub}

	if err := m.SetSliceIntent("p0", SliceIntent{Name: "train", Shape: topo.Shape{X: 4, Y: 4, Z: 16}}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetSliceIntent("p1", SliceIntent{Name: "serve", Shape: topo.Shape{X: 4, Y: 4, Z: 8}, Cubes: []int{3, 4}}); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 10*time.Second, func(evs []Event) bool {
		return countEvents(evs, "p0", EventSliceReady) >= 1 &&
			countEvents(evs, "p1", EventSliceReady) >= 1
	})
	if _, err := b0.Fabric().GetSlice("train"); err != nil {
		t.Fatal(err)
	}
	sl, err := b1.Fabric().GetSlice("serve")
	if err != nil {
		t.Fatal(err)
	}
	if sl.Cubes[0] != 3 || sl.Cubes[1] != 4 {
		t.Fatalf("pinned cubes = %v", sl.Cubes)
	}
	st := m.Status()
	if len(st.Pods) != 2 || st.Pods[0].Circuits == 0 {
		t.Fatalf("status = %+v", st)
	}
}

func TestFabricBackendCubeFaultSeams(t *testing.T) {
	b := fabricBackend(t, 8, nil)
	if _, err := b.Ensure("j", topo.Shape{X: 4, Y: 4, Z: 8}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	// Failing an owned cube auto-swaps a spare in.
	rc, err := b.FailCube(0)
	if err != nil {
		t.Fatal(err)
	}
	if rc < 0 {
		t.Fatalf("no replacement cube for owned failure, got %d", rc)
	}
	if b.CubeHealthy(0) {
		t.Fatal("cube 0 still healthy after FailCube")
	}
	sl, err := b.Fabric().GetSlice("j")
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range sl.Cubes {
		if c == 0 {
			t.Fatalf("failed cube still in slice: %v", sl.Cubes)
		}
	}
	// Failing a free cube reports no replacement.
	if rc, err := b.FailCube(7); err != nil || rc != -1 {
		t.Fatalf("free-cube failure = (%d, %v), want (-1, nil)", rc, err)
	}
	if err := b.RepairCube(0); err != nil {
		t.Fatal(err)
	}
	if !b.CubeHealthy(0) {
		t.Fatal("cube 0 unhealthy after repair")
	}
}

func TestManagerResolvesCyclicCubeMigration(t *testing.T) {
	m := NewManager(fastOptions(nil))
	defer m.Close()
	b := fabricBackend(t, 4, nil)
	if err := m.AddPod("p", b); err != nil {
		t.Fatal(err)
	}
	sub := m.Subscribe(64)
	defer sub.Close()
	col := &collector{sub: sub}
	shape := topo.Shape{X: 4, Y: 4, Z: 8}
	if err := m.SetSliceIntent("p", SliceIntent{Name: "a", Shape: shape, Cubes: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetSliceIntent("p", SliceIntent{Name: "z", Shape: shape, Cubes: []int{2, 3}}); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 10*time.Second, func(evs []Event) bool {
		return countEvents(evs, "p", EventSliceReady) >= 2
	})
	// Swap the two slices' cubes — a cyclic migration no single ensure
	// order can satisfy without tearing one down first.
	if err := m.SetSliceIntent("p", SliceIntent{Name: "a", Shape: shape, Cubes: []int{2, 3}}); err != nil {
		t.Fatal(err)
	}
	if err := m.SetSliceIntent("p", SliceIntent{Name: "z", Shape: shape, Cubes: []int{0, 1}}); err != nil {
		t.Fatal(err)
	}
	col.waitFor(t, 10*time.Second, func(evs []Event) bool {
		st := m.Status()
		return len(st.Pods) == 1 && st.Pods[0].Converged && !st.Pods[0].Quarantined
	})
	sl, err := b.Fabric().GetSlice("a")
	if err != nil {
		t.Fatal(err)
	}
	if sl.Cubes[0] != 2 || sl.Cubes[1] != 3 {
		t.Fatalf("slice a cubes = %v, want [2 3]", sl.Cubes)
	}
	sl, err = b.Fabric().GetSlice("z")
	if err != nil {
		t.Fatal(err)
	}
	if sl.Cubes[0] != 0 || sl.Cubes[1] != 1 {
		t.Fatalf("slice z cubes = %v, want [0 1]", sl.Cubes)
	}
}
