package fleet

import "time"

// EventType classifies fleet events.
type EventType string

// Event types published on the stream.
const (
	// EventIntent: an intent was accepted into the store.
	EventIntent EventType = "intent"
	// EventSliceReady: a desired slice converged on the hardware.
	EventSliceReady EventType = "slice-ready"
	// EventSliceRemoved: a removed slice was destroyed.
	EventSliceRemoved EventType = "slice-removed"
	// EventConverged: a pod's actual state matches its intent.
	EventConverged EventType = "converged"
	// EventDeferred: new slices are held back by an OCS drain.
	EventDeferred EventType = "deferred"
	// EventReconcileError: one reconcile attempt failed (will retry).
	EventReconcileError EventType = "reconcile-error"
	// EventQuarantined: a pod exhausted its retry budget.
	EventQuarantined EventType = "quarantined"
	// EventRecovered: a previously quarantined pod converged again after
	// its backend recovered and UndrainPod released the quarantine.
	EventRecovered EventType = "recovered"
	// EventDrained / EventUndrained: pod- or OCS-level maintenance drains.
	EventDrained   EventType = "drained"
	EventUndrained EventType = "undrained"
	// EventPodRemoved: a pod was retired from the fleet.
	EventPodRemoved EventType = "pod-removed"
)

// Event is one fleet state transition.
type Event struct {
	Seq    uint64
	Time   time.Time
	Pod    string
	Type   EventType
	Slice  string // set for slice-scoped events
	Detail string
}

// Subscription is a buffered event feed. Slow consumers do not block the
// control plane: events that do not fit the buffer are dropped and counted
// on fleet.watch_dropped_total.
type Subscription struct {
	m  *Manager
	id int
	ch chan Event
}

// Subscribe opens an event feed with the given buffer (default 64).
// Events emitted before Subscribe returns are not replayed.
func (m *Manager) Subscribe(buffer int) *Subscription {
	if buffer <= 0 {
		buffer = 64
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	s := &Subscription{m: m, id: m.nextSub, ch: make(chan Event, buffer)}
	m.nextSub++
	if m.closed {
		close(s.ch)
		return s
	}
	m.subs[s.id] = s
	return s
}

// Events returns the feed; it is closed by Close or Manager.Close.
func (s *Subscription) Events() <-chan Event { return s.ch }

// Close ends the subscription.
func (s *Subscription) Close() {
	s.m.mu.Lock()
	defer s.m.mu.Unlock()
	if _, ok := s.m.subs[s.id]; !ok {
		return
	}
	delete(s.m.subs, s.id)
	close(s.ch)
}

// emitLocked stamps and fans an event out to every subscriber.
func (m *Manager) emitLocked(ev Event) {
	m.seq++
	ev.Seq = m.seq
	ev.Time = time.Now()
	for _, s := range m.subs {
		select {
		case s.ch <- ev:
		default:
			m.watchDropped.Inc()
		}
	}
}
