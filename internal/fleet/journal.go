package fleet

// The fleet journal seam. A Manager configured with a Journal writes every
// intent-store mutation ahead of applying it (a journal failure rejects the
// mutation, so durable state never lags accepted state), plus observability
// records for quarantine/recovery decisions the reconcilers make on their
// own. Replay rebuilds the intent store only — recovery restores intent,
// reconciliation restores reality — so quarantine records are informational
// on replay: a restarted manager re-probes its backends and re-derives
// health rather than trusting a pre-crash verdict.

// JournalOp identifies a fleet journal entry.
type JournalOp string

// Fleet journal operations.
const (
	OpAddPod      JournalOp = "add-pod"
	OpRemovePod   JournalOp = "remove-pod"
	OpSetSlice    JournalOp = "set-slice"
	OpRemoveSlice JournalOp = "remove-slice"
	OpReplace     JournalOp = "replace"
	OpDrainPod    JournalOp = "drain-pod"
	OpUndrainPod  JournalOp = "undrain-pod"
	OpDrainOCS    JournalOp = "drain-ocs"
	OpUndrainOCS  JournalOp = "undrain-ocs"
	OpQuarantine  JournalOp = "quarantine"
	OpRecover     JournalOp = "recover"
)

// JournalEntry is one fleet journal record. Fields beyond Op and Pod are
// op-specific: Slice for set-slice, Name for remove-slice, Slices for
// replace, OCS for the OCS drains.
type JournalEntry struct {
	Op     JournalOp     `json:"op"`
	Pod    string        `json:"pod"`
	Slice  *SliceIntent  `json:"slice,omitempty"`
	Name   string        `json:"name,omitempty"`
	Slices []SliceIntent `json:"slices,omitempty"`
	OCS    int           `json:"ocs,omitempty"`
	Detail string        `json:"detail,omitempty"`
}

// Journal receives fleet journal entries; implementations must be safe for
// concurrent use and are called with the Manager's lock held, so they must
// not call back into the Manager.
type Journal interface {
	JournalFleet(e JournalEntry) error
}

// journalLocked writes one entry through the configured journal.
func (m *Manager) journalLocked(e JournalEntry) error {
	if m.opts.Journal == nil {
		return nil
	}
	return m.opts.Journal.JournalFleet(e)
}

// journalDerivedLocked records reconciler-derived state (quarantine and
// recovery edges). These are not intent: a journal failure must not wedge
// the reconcile loop, so errors are dropped.
func (m *Manager) journalDerivedLocked(e JournalEntry) {
	_ = m.journalLocked(e)
}
