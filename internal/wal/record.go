// Typed record codecs. Every log record carries a one-byte type tag so
// replay can dispatch without sniffing payloads; payloads are JSON for the
// same reason the control protocol is JSON — debuggability beats density at
// control-plane rates, and the group-commit batching amortizes the bytes.
package wal

import (
	"encoding/json"
	"fmt"

	"lightwave/internal/fleet"
	"lightwave/internal/sched"
)

// RecordType tags a log record's payload encoding.
type RecordType uint8

const (
	// RecordFleet is a fleet.JournalEntry: an intent-store mutation or a
	// quarantine/recovery decision.
	RecordFleet RecordType = 1
	// RecordSched is a sched.JournalEntry: one scheduler input, replayed
	// through the deterministic scheduler to rebuild placement state.
	RecordSched RecordType = 2
	// RecordCommand is a raw ctlrpc command (method + params) journaled
	// by the per-fabric server after successful execution.
	RecordCommand RecordType = 3

	maxRecordType = RecordCommand
)

// Command is a journaled control-plane RPC, replayed verbatim against the
// fabric server on recovery.
type Command struct {
	Method string          `json:"method"`
	Params json.RawMessage `json:"params,omitempty"`
}

// codec names a record type and decodes its payload for tooling and
// tests; daemons decode through the typed helpers below instead.
type codec struct {
	name   string
	decode func([]byte) (any, error)
}

var codecs = map[RecordType]codec{
	RecordFleet: {"fleet", func(p []byte) (any, error) {
		e, err := DecodeFleet(p)
		return e, err
	}},
	RecordSched: {"sched", func(p []byte) (any, error) {
		e, err := DecodeSched(p)
		return e, err
	}},
	RecordCommand: {"command", func(p []byte) (any, error) {
		c, err := DecodeCommand(p)
		return c, err
	}},
}

// Kind returns the record type's name, or "unknown".
func (r Record) Kind() string {
	if c, ok := codecs[r.Type]; ok {
		return c.name
	}
	return "unknown"
}

// Decode returns the typed value for the record's payload.
func (r Record) Decode() (any, error) {
	c, ok := codecs[r.Type]
	if !ok {
		return nil, fmt.Errorf("wal: unknown record type %d", r.Type)
	}
	return c.decode(r.Payload)
}

// EncodeFleet serializes a fleet journal entry.
func EncodeFleet(e fleet.JournalEntry) ([]byte, error) { return json.Marshal(e) }

// DecodeFleet parses a RecordFleet payload.
func DecodeFleet(p []byte) (fleet.JournalEntry, error) {
	var e fleet.JournalEntry
	if err := json.Unmarshal(p, &e); err != nil {
		return fleet.JournalEntry{}, fmt.Errorf("wal: fleet record: %w", err)
	}
	return e, nil
}

// EncodeSched serializes a scheduler journal entry.
func EncodeSched(e sched.JournalEntry) ([]byte, error) { return json.Marshal(e) }

// DecodeSched parses a RecordSched payload.
func DecodeSched(p []byte) (sched.JournalEntry, error) {
	var e sched.JournalEntry
	if err := json.Unmarshal(p, &e); err != nil {
		return sched.JournalEntry{}, fmt.Errorf("wal: sched record: %w", err)
	}
	return e, nil
}

// EncodeCommand serializes a journaled RPC command.
func EncodeCommand(c Command) ([]byte, error) { return json.Marshal(c) }

// DecodeCommand parses a RecordCommand payload.
func DecodeCommand(p []byte) (Command, error) {
	var c Command
	if err := json.Unmarshal(p, &c); err != nil {
		return Command{}, fmt.Errorf("wal: command record: %w", err)
	}
	if c.Method == "" {
		return Command{}, fmt.Errorf("wal: command record: empty method")
	}
	return c, nil
}
