package wal

import (
	"encoding/hex"
	"encoding/json"
	"fmt"
	"sync"

	"lightwave/internal/fleet"
	"lightwave/internal/sched"
)

// Store binds a Log to the control plane's three journal sources: the
// fleet intent store (typed state records, folded into a materialized
// FleetState), the slice scheduler (typed input records, replayed through
// the deterministic scheduler), and the per-fabric RPC server (raw
// command records, re-executed verbatim). It implements fleet.Journal,
// sched.Journal, the ctlrpc journal seam, and Snapshotter, and tracks
// per-section LSNs so a snapshot can compact the log without quiescing
// any of the sources.
type Store struct {
	log *Log

	mu           sync.Mutex
	fleetState   *FleetState
	lastFleetLSN uint64
	lastSchedLSN uint64
	lastCmdLSN   uint64
	// maxTypeLSN tracks the highest LSN ever seen per record type
	// (replayed or appended): a type present in the log but without an
	// attached snapshot section pins compaction so its records survive
	// for a future boot that does attach the section.
	maxTypeLSN [maxRecordType + 1]uint64
	suppress   bool
	schedSrc   *sched.Scheduler
	fabricSnap func() ([]Command, error)

	// Recovery leftovers, consumed by RecoverSched / ReplayCommands.
	snapSched    json.RawMessage
	schedTail    []sched.JournalEntry
	snapCommands []Command
	cmdTail      []Command

	replayRecords   int
	replayErrors    int
	truncatedBytes  int64
	droppedSegments int

	ckptMu sync.Mutex
}

// storeSnapshot is the snapshot payload: one optional section per source,
// each with the LSN its content covers.
type storeSnapshot struct {
	FleetLSN uint64          `json:"fleetLSN"`
	Fleet    json.RawMessage `json:"fleet,omitempty"`
	SchedLSN uint64          `json:"schedLSN,omitempty"`
	Sched    json.RawMessage `json:"sched,omitempty"`
	CmdLSN   uint64          `json:"cmdLSN,omitempty"`
	Commands []Command       `json:"commands,omitempty"`
}

// OpenStore opens (or creates) a state directory, replays the snapshot
// and log tail into a materialized fleet state plus pending sched/command
// tails, and returns a store ready to journal.
func OpenStore(dir string, opts Options) (*Store, error) {
	log, rec, err := Open(dir, opts)
	if err != nil {
		return nil, err
	}
	st := &Store{
		log:             log,
		fleetState:      NewFleetState(),
		replayRecords:   len(rec.Records),
		truncatedBytes:  rec.TruncatedBytes,
		droppedSegments: rec.DroppedSegments,
	}
	var snapSchedLSN uint64
	if rec.SnapshotState != nil {
		var snap storeSnapshot
		if err := json.Unmarshal(rec.SnapshotState, &snap); err != nil {
			_ = log.Close()
			return nil, fmt.Errorf("wal: snapshot payload: %w", err)
		}
		if snap.Fleet != nil {
			fs, err := DecodeFleetState(snap.Fleet)
			if err != nil {
				_ = log.Close()
				return nil, err
			}
			st.fleetState = fs
		}
		st.lastFleetLSN = snap.FleetLSN
		st.snapSched = snap.Sched
		snapSchedLSN = snap.SchedLSN
		st.lastSchedLSN = snap.SchedLSN
		st.snapCommands = snap.Commands
		st.lastCmdLSN = snap.CmdLSN
	}
	for _, r := range rec.Records {
		if int(r.Type) <= int(maxRecordType) && r.LSN > st.maxTypeLSN[r.Type] {
			st.maxTypeLSN[r.Type] = r.LSN
		}
		switch r.Type {
		case RecordFleet:
			if r.LSN <= st.lastFleetLSN {
				continue
			}
			e, err := DecodeFleet(r.Payload)
			if err != nil {
				st.replayErrors++
				continue
			}
			st.fleetState.Apply(e)
			st.lastFleetLSN = r.LSN
		case RecordSched:
			if r.LSN <= snapSchedLSN {
				continue
			}
			e, err := DecodeSched(r.Payload)
			if err != nil {
				st.replayErrors++
				continue
			}
			st.schedTail = append(st.schedTail, e)
			st.lastSchedLSN = r.LSN
		case RecordCommand:
			if r.LSN <= st.lastCmdLSN {
				continue
			}
			c, err := DecodeCommand(r.Payload)
			if err != nil {
				st.replayErrors++
				continue
			}
			st.cmdTail = append(st.cmdTail, c)
			st.lastCmdLSN = r.LSN
		default:
			st.replayErrors++
		}
	}
	return st, nil
}

// Close stops the underlying log. It does not snapshot; callers wanting a
// clean-shutdown snapshot call Checkpoint first.
func (st *Store) Close() error { return st.log.Close() }

// Log exposes the underlying log (status, tests).
func (st *Store) Log() *Log { return st.log }

// BeginRecovery suppresses journal appends: entries generated while the
// daemon re-registers pods and replays recovered state still fold into
// the materialized fleet state (keeping it accurate) but are not written
// to disk — the log already contains them.
func (st *Store) BeginRecovery() {
	st.mu.Lock()
	st.suppress = true
	st.mu.Unlock()
}

// EndRecovery resumes journaling.
func (st *Store) EndRecovery() {
	st.mu.Lock()
	st.suppress = false
	st.mu.Unlock()
}

// JournalFleet implements fleet.Journal: write-ahead append, then fold
// into the materialized state.
func (st *Store) JournalFleet(e fleet.JournalEntry) error {
	st.mu.Lock()
	if st.suppress {
		st.fleetState.Apply(e)
		st.mu.Unlock()
		return nil
	}
	st.mu.Unlock()
	b, err := EncodeFleet(e)
	if err != nil {
		return err
	}
	lsn, err := st.log.Append(RecordFleet, b)
	if err != nil {
		return err
	}
	st.mu.Lock()
	st.fleetState.Apply(e)
	if lsn > st.lastFleetLSN {
		st.lastFleetLSN = lsn
	}
	if lsn > st.maxTypeLSN[RecordFleet] {
		st.maxTypeLSN[RecordFleet] = lsn
	}
	st.mu.Unlock()
	return nil
}

// JournalSched implements sched.Journal.
func (st *Store) JournalSched(e sched.JournalEntry) (uint64, error) {
	st.mu.Lock()
	if st.suppress {
		st.mu.Unlock()
		return 0, nil
	}
	st.mu.Unlock()
	b, err := EncodeSched(e)
	if err != nil {
		return 0, err
	}
	lsn, err := st.log.Append(RecordSched, b)
	if err != nil {
		return 0, err
	}
	st.mu.Lock()
	if lsn > st.lastSchedLSN {
		st.lastSchedLSN = lsn
	}
	if lsn > st.maxTypeLSN[RecordSched] {
		st.maxTypeLSN[RecordSched] = lsn
	}
	st.mu.Unlock()
	return lsn, nil
}

// JournalCommand journals one successfully executed RPC command (the
// ctlrpc server seam). The command is durable before the RPC response is
// written.
func (st *Store) JournalCommand(method string, params json.RawMessage) error {
	st.mu.Lock()
	if st.suppress {
		st.mu.Unlock()
		return nil
	}
	st.mu.Unlock()
	b, err := EncodeCommand(Command{Method: method, Params: params})
	if err != nil {
		return err
	}
	lsn, err := st.log.Append(RecordCommand, b)
	if err != nil {
		return err
	}
	st.mu.Lock()
	if lsn > st.lastCmdLSN {
		st.lastCmdLSN = lsn
	}
	if lsn > st.maxTypeLSN[RecordCommand] {
		st.maxTypeLSN[RecordCommand] = lsn
	}
	st.mu.Unlock()
	return nil
}

// AttachSched registers the scheduler whose exported state joins future
// snapshots. Call once the scheduler exists (recovery included).
func (st *Store) AttachSched(s *sched.Scheduler) {
	st.mu.Lock()
	st.schedSrc = s
	st.mu.Unlock()
}

// SetFabricSnapshot registers a function that captures the fabric's
// current state as a command list (install-cube / ensure / fail-cube);
// replaying those commands on an empty fabric reproduces the state. Used
// by lwfd, whose journal source is raw RPC commands.
func (st *Store) SetFabricSnapshot(fn func() ([]Command, error)) {
	st.mu.Lock()
	st.fabricSnap = fn
	st.mu.Unlock()
}

// RecoverFleet pushes the recovered intent store into a live manager.
// Call between BeginRecovery and EndRecovery, after the daemon has added
// its pods.
func (st *Store) RecoverFleet(m *fleet.Manager) error {
	st.mu.Lock()
	fs := st.fleetState
	st.mu.Unlock()
	return fs.ApplyTo(m)
}

// RecoverSched restores a freshly constructed scheduler: import the
// snapshot's state export, then replay the journaled input tail through
// the ordinary mutators. Replay errors are tolerated (the cluster may
// reject an intent mid-recovery; reconciliation converges later) and
// counted in failed.
func (st *Store) RecoverSched(s *sched.Scheduler) (applied, failed int, err error) {
	st.mu.Lock()
	raw := st.snapSched
	tail := st.schedTail
	st.mu.Unlock()
	if raw != nil {
		var state sched.State
		if err := json.Unmarshal(raw, &state); err != nil {
			return 0, 0, fmt.Errorf("wal: sched snapshot: %w", err)
		}
		if err := s.ImportState(state); err != nil {
			return 0, 0, err
		}
	}
	for _, e := range tail {
		if err := s.Apply(e); err != nil {
			failed++
			continue
		}
		applied++
	}
	return applied, failed, nil
}

// ReplayCommands re-executes the snapshot's captured command list and the
// journaled command tail through apply. Errors are tolerated and counted
// (a fail-cube may race a snapshot capture and replay as a no-op error).
func (st *Store) ReplayCommands(apply func(method string, params json.RawMessage) error) (applied, failed int) {
	st.mu.Lock()
	cmds := make([]Command, 0, len(st.snapCommands)+len(st.cmdTail))
	cmds = append(cmds, st.snapCommands...)
	cmds = append(cmds, st.cmdTail...)
	st.mu.Unlock()
	for _, c := range cmds {
		if err := apply(c.Method, c.Params); err != nil {
			failed++
			continue
		}
		applied++
	}
	return applied, failed
}

// Snapshot implements Snapshotter: capture every attached section and
// compute the covered LSN as the weakest section floor, so compaction
// never deletes a record some section still needs.
func (st *Store) Snapshot() ([]byte, uint64, error) {
	var snap storeSnapshot

	// Sched section first, without holding st.mu: ExportState takes the
	// scheduler lock, which may be held by a mutator blocked in
	// JournalSched → st.mu.
	st.mu.Lock()
	schedSrc := st.schedSrc
	fabricSnap := st.fabricSnap
	st.mu.Unlock()
	schedAttached := schedSrc != nil
	if schedAttached {
		state := schedSrc.ExportState()
		b, err := json.Marshal(state)
		if err != nil {
			return nil, 0, err
		}
		snap.Sched = b
		snap.SchedLSN = state.WALLSN
	}

	// Command section: read the covered LSN before capturing, so a
	// command landing mid-capture replays on top (idempotently) rather
	// than being lost.
	cmdAttached := fabricSnap != nil
	if cmdAttached {
		st.mu.Lock()
		snap.CmdLSN = st.lastCmdLSN
		st.mu.Unlock()
		cmds, err := fabricSnap()
		if err != nil {
			return nil, 0, err
		}
		snap.Commands = cmds
	}

	st.mu.Lock()
	fb, err := st.fleetState.Encode()
	if err != nil {
		st.mu.Unlock()
		return nil, 0, err
	}
	snap.Fleet = fb
	snap.FleetLSN = st.lastFleetLSN
	maxType := st.maxTypeLSN
	st.mu.Unlock()

	covered := st.log.LastLSN()
	floor := func(present uint64, attached bool, sectionLSN uint64) {
		if present == 0 {
			return // no records of this type: nothing to protect
		}
		f := uint64(0)
		if attached {
			f = sectionLSN
		}
		if f < covered {
			covered = f
		}
	}
	floor(maxType[RecordFleet], true, snap.FleetLSN)
	floor(maxType[RecordSched], schedAttached, snap.SchedLSN)
	floor(maxType[RecordCommand], cmdAttached, snap.CmdLSN)

	payload, err := json.Marshal(snap)
	if err != nil {
		return nil, 0, err
	}
	return payload, covered, nil
}

// Checkpoint captures a snapshot and compacts the log. Serialized: a
// periodic checkpoint and the shutdown checkpoint never interleave.
func (st *Store) Checkpoint() error {
	st.ckptMu.Lock()
	defer st.ckptMu.Unlock()
	return st.log.Checkpoint(st)
}

// FleetDigest hashes the materialized intent store's canonical encoding.
func (st *Store) FleetDigest() (string, error) {
	st.mu.Lock()
	defer st.mu.Unlock()
	d, err := st.fleetState.Digest()
	if err != nil {
		return "", err
	}
	return hex.EncodeToString(d[:]), nil
}

// FleetStateCopy returns a deep copy of the materialized intent store.
func (st *Store) FleetStateCopy() (*FleetState, error) {
	st.mu.Lock()
	b, err := st.fleetState.Encode()
	st.mu.Unlock()
	if err != nil {
		return nil, err
	}
	return DecodeFleetState(b)
}

// StoreStatus extends the log status with replay and content summaries.
type StoreStatus struct {
	Log             Status
	ReplayRecords   int
	ReplayErrors    int
	TruncatedBytes  int64
	DroppedSegments int
	FleetPods       int
	FleetSlices     int
	FleetDigest     string
}

// Status summarizes the store for wal-status.
func (st *Store) Status() StoreStatus {
	out := StoreStatus{Log: st.log.Status()}
	st.mu.Lock()
	out.ReplayRecords = st.replayRecords
	out.ReplayErrors = st.replayErrors
	out.TruncatedBytes = st.truncatedBytes
	out.DroppedSegments = st.droppedSegments
	out.FleetPods = len(st.fleetState.Pods)
	for _, p := range st.fleetState.Pods {
		out.FleetSlices += len(p.Slices)
	}
	if d, err := st.fleetState.Digest(); err == nil {
		out.FleetDigest = hex.EncodeToString(d[:])
	}
	st.mu.Unlock()
	return out
}
