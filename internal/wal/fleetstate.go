package wal

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"sort"

	"lightwave/internal/fleet"
)

// FleetState is the materialized fleet intent store: the fold of every
// fleet journal entry. The Store keeps one up to date as entries are
// journaled, so a snapshot captures the intent store without replaying
// the log, and a digest of the canonical encoding lets the chaos
// crash-restart evaluator assert byte-identical recovery.
type FleetState struct {
	// Pods maps pod name to its durable intent state.
	Pods map[string]*PodIntent `json:"pods"`
}

// PodIntent is one pod's durable state. Quarantined mirrors the
// reconciler's last journaled verdict; it is restored for observability
// but recovery does not force it back into the manager — a restarted
// manager re-derives health by reconciling.
type PodIntent struct {
	Slices      map[string]fleet.SliceIntent `json:"slices"`
	Drained     bool                         `json:"drained,omitempty"`
	DrainedOCS  []int                        `json:"drainedOCS,omitempty"`
	Quarantined bool                         `json:"quarantined,omitempty"`
}

// NewFleetState returns an empty intent store.
func NewFleetState() *FleetState {
	return &FleetState{Pods: make(map[string]*PodIntent)}
}

func (fs *FleetState) pod(name string) *PodIntent {
	p := fs.Pods[name]
	if p == nil {
		p = &PodIntent{Slices: make(map[string]fleet.SliceIntent)}
		fs.Pods[name] = p
	}
	return p
}

// Apply folds one journal entry into the state. Unknown ops are ignored
// so newer logs replay on older code as far as possible.
func (fs *FleetState) Apply(e fleet.JournalEntry) {
	switch e.Op {
	case fleet.OpAddPod:
		fs.pod(e.Pod)
	case fleet.OpRemovePod:
		delete(fs.Pods, e.Pod)
	case fleet.OpSetSlice:
		if e.Slice != nil {
			fs.pod(e.Pod).Slices[e.Slice.Name] = *e.Slice
		}
	case fleet.OpRemoveSlice:
		delete(fs.pod(e.Pod).Slices, e.Name)
	case fleet.OpReplace:
		p := fs.pod(e.Pod)
		p.Slices = make(map[string]fleet.SliceIntent, len(e.Slices))
		for _, in := range e.Slices {
			p.Slices[in.Name] = in
		}
	case fleet.OpDrainPod:
		fs.pod(e.Pod).Drained = true
	case fleet.OpUndrainPod:
		p := fs.pod(e.Pod)
		p.Drained = false
		p.Quarantined = false
	case fleet.OpDrainOCS:
		p := fs.pod(e.Pod)
		for _, o := range p.DrainedOCS {
			if o == e.OCS {
				return
			}
		}
		p.DrainedOCS = append(p.DrainedOCS, e.OCS)
		sort.Ints(p.DrainedOCS)
	case fleet.OpUndrainOCS:
		p := fs.pod(e.Pod)
		out := p.DrainedOCS[:0]
		for _, o := range p.DrainedOCS {
			if o != e.OCS {
				out = append(out, o)
			}
		}
		p.DrainedOCS = out
		if len(p.DrainedOCS) == 0 {
			p.DrainedOCS = nil
		}
	case fleet.OpQuarantine:
		fs.pod(e.Pod).Quarantined = true
	case fleet.OpRecover:
		fs.pod(e.Pod).Quarantined = false
	}
}

// canonical is the deterministic wire form of a FleetState: pods and
// slices as sorted arrays so two equal states encode to equal bytes.
type canonicalPod struct {
	Name        string              `json:"name"`
	Slices      []fleet.SliceIntent `json:"slices"`
	Drained     bool                `json:"drained,omitempty"`
	DrainedOCS  []int               `json:"drainedOCS,omitempty"`
	Quarantined bool                `json:"quarantined,omitempty"`
}

// Encode returns the canonical JSON encoding: map iteration order never
// leaks into the bytes, so equal states yield equal encodings.
func (fs *FleetState) Encode() ([]byte, error) {
	pods := make([]canonicalPod, 0, len(fs.Pods))
	for name, p := range fs.Pods {
		cp := canonicalPod{
			Name:        name,
			Slices:      make([]fleet.SliceIntent, 0, len(p.Slices)),
			Drained:     p.Drained,
			DrainedOCS:  p.DrainedOCS,
			Quarantined: p.Quarantined,
		}
		for _, in := range p.Slices {
			cp.Slices = append(cp.Slices, in)
		}
		sort.Slice(cp.Slices, func(i, j int) bool { return cp.Slices[i].Name < cp.Slices[j].Name })
		pods = append(pods, cp)
	}
	sort.Slice(pods, func(i, j int) bool { return pods[i].Name < pods[j].Name })
	return json.Marshal(pods)
}

// DecodeFleetState parses an Encode result.
func DecodeFleetState(b []byte) (*FleetState, error) {
	var pods []canonicalPod
	if err := json.Unmarshal(b, &pods); err != nil {
		return nil, fmt.Errorf("wal: fleet state: %w", err)
	}
	fs := NewFleetState()
	for _, cp := range pods {
		p := fs.pod(cp.Name)
		p.Drained = cp.Drained
		p.DrainedOCS = cp.DrainedOCS
		p.Quarantined = cp.Quarantined
		for _, in := range cp.Slices {
			p.Slices[in.Name] = in
		}
	}
	return fs, nil
}

// Digest hashes the canonical encoding — the identity the crash-restart
// evaluator compares across a crash.
func (fs *FleetState) Digest() ([32]byte, error) {
	b, err := fs.Encode()
	if err != nil {
		return [32]byte{}, err
	}
	return sha256.Sum256(b), nil
}

// ApplyTo pushes the recovered intent store into a live manager. Pods
// must already be registered (the daemon adds them from its own config;
// a pod present on disk but absent from the config is skipped — the
// operator shrank the fleet). Quarantine verdicts are not pushed: the
// manager re-derives pod health by reconciling.
func (fs *FleetState) ApplyTo(m *fleet.Manager) error {
	known := make(map[string]bool)
	for _, name := range m.Pods() {
		known[name] = true
	}
	names := make([]string, 0, len(fs.Pods))
	for name := range fs.Pods {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !known[name] {
			continue
		}
		p := fs.Pods[name]
		ins := make([]fleet.SliceIntent, 0, len(p.Slices))
		for _, in := range p.Slices {
			ins = append(ins, in)
		}
		sort.Slice(ins, func(i, j int) bool { return ins[i].Name < ins[j].Name })
		if err := m.ReplaceIntent(name, ins); err != nil {
			return fmt.Errorf("wal: restore %s intents: %w", name, err)
		}
		for _, o := range p.DrainedOCS {
			if err := m.DrainOCS(name, o); err != nil {
				return fmt.Errorf("wal: restore %s ocs drain: %w", name, err)
			}
		}
		if p.Drained {
			if err := m.DrainPod(name); err != nil {
				return fmt.Errorf("wal: restore %s drain: %w", name, err)
			}
		}
	}
	return nil
}
