package wal

import (
	"fmt"
	"testing"
)

// BenchmarkWALAppend measures the group-commit append path with real
// fsyncs — the latency a control-plane mutation pays for durability.
func BenchmarkWALAppend(b *testing.B) {
	l, _, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := []byte(`{"op":"set-slice","pod":"pod0","slice":{"name":"train","shape":{"x":4,"y":4,"z":16},"cubes":[0,1,2,3]}}`)
	b.SetBytes(int64(frameHeaderBytes + 1 + len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(RecordFleet, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendNoSync isolates the framing + batching cost from the
// fsync floor.
func BenchmarkWALAppendNoSync(b *testing.B) {
	l, _, err := Open(b.TempDir(), Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := []byte(`{"op":"advance","t":1234.5}`)
	b.SetBytes(int64(frameHeaderBytes + 1 + len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := l.Append(RecordSched, payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWALAppendParallel shows group commit amortizing fsyncs across
// concurrent appenders: throughput should rise well above the serial
// fsync rate.
func BenchmarkWALAppendParallel(b *testing.B) {
	l, _, err := Open(b.TempDir(), Options{})
	if err != nil {
		b.Fatal(err)
	}
	defer l.Close()
	payload := []byte(`{"method":"ensure","params":{"name":"s1","shape":[2,2,4]}}`)
	b.SetBytes(int64(frameHeaderBytes + 1 + len(payload)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := l.Append(RecordCommand, payload); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.StopTimer()
	st := l.Status()
	if st.Appends > 0 && st.Fsyncs > 0 {
		b.ReportMetric(float64(st.Appends)/float64(st.Fsyncs), "records/fsync")
	}
}

// BenchmarkWALReplay measures cold-start recovery over a compacted log
// with a realistic tail.
func BenchmarkWALReplay(b *testing.B) {
	dir := b.TempDir()
	l, _, err := Open(dir, Options{NoSync: true})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < 2048; i++ {
		payload := []byte(fmt.Sprintf(`{"op":"set-slice","pod":"pod%d","n":%d}`, i%8, i))
		if _, err := l.Append(RecordFleet, payload); err != nil {
			b.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l2, rec, err := Open(dir, Options{NoSync: true})
		if err != nil {
			b.Fatal(err)
		}
		if len(rec.Records) != 2048 {
			b.Fatalf("replayed %d", len(rec.Records))
		}
		l2.Close()
	}
}
