package wal

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"testing"
)

// TestTortureEveryByteOffset is the crash-point torture test: build a
// multi-segment log, then simulate a crash at every byte offset of every
// segment by truncating that segment there (a torn write never reorders
// earlier bytes, so a prefix is exactly what a crash can leave). Replay
// must always recover the longest valid record prefix — frames fully
// committed before the crash point — and the reopened log must accept new
// appends at the right LSN.
func TestTortureEveryByteOffset(t *testing.T) {
	master := t.TempDir()
	l, _ := openT(t, master, Options{SegmentBytes: 160, NoSync: true})
	const n = 40
	for i := 0; i < n; i++ {
		// Varying payload sizes exercise offsets that split headers,
		// type bytes, and payloads.
		payload := []byte(fmt.Sprintf("torture-%02d-%s", i, "xxxxxxxxxx"[:i%10]))
		appendT(t, l, RecordType(i%3+1), payload)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	segs := listSegments(t, master)
	if len(segs) < 3 {
		t.Fatalf("want a multi-segment log, got %d segments", len(segs))
	}

	// Frame boundaries per segment: ends[s] holds the cumulative record
	// count at each valid truncation offset of segment s.
	type segInfo struct {
		name string
		size int64
		// frameEnds[k] is the byte offset at which the (k+1)-th record of
		// this segment ends.
		frameEnds []int64
		before    int // records in earlier segments
	}
	infos := make([]segInfo, len(segs))
	total := 0
	for si, name := range segs {
		path := filepath.Join(master, name)
		first, ok := parseName(name, segPrefix, segSuffix)
		if !ok {
			t.Fatalf("unparseable segment name %q", name)
		}
		recs, valid, size, err := scanSegment(path, first)
		if err != nil {
			t.Fatal(err)
		}
		if valid != size {
			t.Fatalf("master segment %s has a torn tail", name)
		}
		info := segInfo{name: name, size: size, before: total}
		off := int64(0)
		for _, r := range recs {
			off += int64(frameHeaderBytes + 1 + len(r.Payload))
			info.frameEnds = append(info.frameEnds, off)
		}
		infos[si] = info
		total += len(recs)
	}
	if total != n {
		t.Fatalf("master log holds %d records, want %d", total, n)
	}

	for si, info := range infos {
		for off := int64(0); off <= info.size; off++ {
			dir := t.TempDir()
			// Crash image: all earlier segments intact, this one cut at
			// off, later segments present but doomed (replay must drop
			// them — their LSNs no longer chain).
			for sj, other := range infos {
				src := filepath.Join(master, other.name)
				dst := filepath.Join(dir, other.name)
				data, err := os.ReadFile(src)
				if err != nil {
					t.Fatal(err)
				}
				if sj == si {
					data = data[:off]
				}
				if err := os.WriteFile(dst, data, 0o644); err != nil {
					t.Fatal(err)
				}
			}

			wantRecs := info.before
			atBoundary := off == 0
			for _, end := range info.frameEnds {
				if end <= off {
					wantRecs++
				}
				if end == off {
					atBoundary = true
				}
			}
			if off == info.size {
				// Nothing torn: this segment is whole, so later segments
				// still chain and the entire log survives.
				wantRecs = total
			}

			l2, rec, err := Open(dir, Options{SegmentBytes: 160, NoSync: true})
			if err != nil {
				t.Fatalf("segment %d offset %d: Open: %v", si, off, err)
			}
			if len(rec.Records) != wantRecs {
				l2.Close()
				t.Fatalf("segment %d offset %d: recovered %d records, want %d",
					si, off, len(rec.Records), wantRecs)
			}
			for k, r := range rec.Records {
				if r.LSN != uint64(k+1) {
					l2.Close()
					t.Fatalf("segment %d offset %d: record %d has lsn %d", si, off, k, r.LSN)
				}
			}
			switch {
			case off == info.size:
				if rec.TruncatedBytes != 0 || rec.DroppedSegments != 0 {
					l2.Close()
					t.Fatalf("segment %d offset %d: spurious truncation (%d bytes, %d segments)",
						si, off, rec.TruncatedBytes, rec.DroppedSegments)
				}
			case !atBoundary:
				// A mid-frame cut must be reported as a torn tail.
				if rec.TruncatedBytes == 0 {
					l2.Close()
					t.Fatalf("segment %d offset %d: torn tail not reported", si, off)
				}
			case si < len(infos)-1:
				// A clean frame-boundary cut leaves no in-segment evidence,
				// but the now-unchainable later segments must be dropped.
				if rec.DroppedSegments == 0 {
					l2.Close()
					t.Fatalf("segment %d offset %d: later segments not dropped", si, off)
				}
			}
			// The recovered log must be appendable at the next LSN.
			lsn, err := l2.Append(RecordFleet, []byte("post-crash"))
			if err != nil {
				t.Fatalf("segment %d offset %d: append after recovery: %v", si, off, err)
			}
			if lsn != uint64(wantRecs+1) {
				l2.Close()
				t.Fatalf("segment %d offset %d: post-crash lsn %d, want %d",
					si, off, lsn, wantRecs+1)
			}
			if err := l2.Close(); err != nil {
				t.Fatal(err)
			}
		}
	}
}

// listSegments returns the directory's segment file names sorted by first
// LSN.
func listSegments(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, e := range entries {
		if _, ok := parseName(e.Name(), segPrefix, segSuffix); ok {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)
	return names
}
