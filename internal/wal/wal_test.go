package wal

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
)

// openT opens a log in dir, failing the test on error.
func openT(t *testing.T, dir string, opts Options) (*Log, *Recovery) {
	t.Helper()
	l, rec, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return l, rec
}

func appendT(t *testing.T, l *Log, typ RecordType, payload []byte) uint64 {
	t.Helper()
	lsn, err := l.Append(typ, payload)
	if err != nil {
		t.Fatalf("Append: %v", err)
	}
	return lsn
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, rec := openT(t, dir, Options{})
	if len(rec.Records) != 0 || rec.SnapshotState != nil {
		t.Fatalf("fresh dir recovered %d records, snapshot %v", len(rec.Records), rec.SnapshotState)
	}

	var want []Record
	for i := 0; i < 20; i++ {
		typ := RecordType(i%3 + 1)
		payload := []byte(fmt.Sprintf("record-%d", i))
		lsn := appendT(t, l, typ, payload)
		if lsn != uint64(i+1) {
			t.Fatalf("record %d got lsn %d", i, lsn)
		}
		want = append(want, Record{LSN: lsn, Type: typ, Payload: payload})
	}
	if got := l.LastLSN(); got != 20 {
		t.Fatalf("LastLSN = %d", got)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2 := openT(t, dir, Options{})
	defer l2.Close()
	if len(rec2.Records) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(rec2.Records), len(want))
	}
	for i, r := range rec2.Records {
		w := want[i]
		if r.LSN != w.LSN || r.Type != w.Type || !bytes.Equal(r.Payload, w.Payload) {
			t.Fatalf("record %d = %+v, want %+v", i, r, w)
		}
	}
	// The reopened log appends at the next LSN.
	if lsn := appendT(t, l2, RecordFleet, []byte("after")); lsn != 21 {
		t.Fatalf("post-reopen lsn = %d", lsn)
	}
}

func TestRotationKeepsEveryRecord(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 128, NoSync: true})
	const n = 100
	for i := 0; i < n; i++ {
		appendT(t, l, RecordSched, []byte(fmt.Sprintf("rotating-%03d", i)))
	}
	st := l.Status()
	if st.Segments < 3 {
		t.Fatalf("expected multiple segments, got %d", st.Segments)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, Options{SegmentBytes: 128, NoSync: true})
	defer l2.Close()
	if len(rec.Records) != n {
		t.Fatalf("replayed %d records across segments, want %d", len(rec.Records), n)
	}
	for i, r := range rec.Records {
		if r.LSN != uint64(i+1) {
			t.Fatalf("record %d has lsn %d", i, r.LSN)
		}
	}
}

// memSnapshotter snapshots a fixed state covering a fixed LSN.
type memSnapshotter struct {
	state   []byte
	covered uint64
}

func (s memSnapshotter) Snapshot() ([]byte, uint64, error) { return s.state, s.covered, nil }

func TestCheckpointCompactsAndRecovers(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 128, NoSync: true})
	for i := 0; i < 60; i++ {
		appendT(t, l, RecordFleet, []byte(fmt.Sprintf("pre-snap-%03d", i)))
	}
	before := l.Status()
	if before.Segments < 2 {
		t.Fatalf("need multiple segments to compact, got %d", before.Segments)
	}
	if err := l.Checkpoint(memSnapshotter{state: []byte("state@60"), covered: 60}); err != nil {
		t.Fatal(err)
	}
	after := l.Status()
	if after.Segments >= before.Segments {
		t.Fatalf("compaction kept %d segments (was %d)", after.Segments, before.Segments)
	}
	if after.SnapshotLSN != 60 {
		t.Fatalf("snapshot lsn = %d", after.SnapshotLSN)
	}
	// Records after the snapshot replay on top of it.
	for i := 0; i < 5; i++ {
		appendT(t, l, RecordFleet, []byte(fmt.Sprintf("post-snap-%d", i)))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec := openT(t, dir, Options{SegmentBytes: 128, NoSync: true})
	defer l2.Close()
	if string(rec.SnapshotState) != "state@60" {
		t.Fatalf("snapshot state = %q", rec.SnapshotState)
	}
	if rec.SnapshotLSN != 60 {
		t.Fatalf("snapshot lsn = %d", rec.SnapshotLSN)
	}
	tail := 0
	for _, r := range rec.Records {
		if r.LSN > rec.SnapshotLSN {
			tail++
		}
	}
	if tail != 5 {
		t.Fatalf("replayed %d tail records, want 5", tail)
	}
	if lsn := appendT(t, l2, RecordFleet, []byte("alive")); lsn != 66 {
		t.Fatalf("post-recovery lsn = %d", lsn)
	}
}

// TestCheckpointFullyCompacted covers the everything-covered case: all
// segments but the active one go away and a fresh open positions the
// sequence from the snapshot alone.
func TestCheckpointFullyCompacted(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 64, NoSync: true})
	for i := 0; i < 30; i++ {
		appendT(t, l, RecordCommand, []byte(fmt.Sprintf("cmd-%02d", i)))
	}
	if err := l.Checkpoint(memSnapshotter{state: []byte("all"), covered: l.LastLSN()}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir, Options{NoSync: true})
	defer l2.Close()
	for _, r := range rec.Records {
		if r.LSN > rec.SnapshotLSN {
			t.Fatalf("unexpected tail record %d", r.LSN)
		}
	}
	if lsn := appendT(t, l2, RecordCommand, []byte("next")); lsn != 31 {
		t.Fatalf("lsn after full compaction = %d, want 31", lsn)
	}
}

func TestCorruptSnapshotSkipped(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{NoSync: true})
	appendT(t, l, RecordFleet, []byte("a"))
	if err := l.Checkpoint(memSnapshotter{state: []byte("good"), covered: 0}); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// A newer, corrupt snapshot must lose to the older valid one.
	bad := filepath.Join(dir, fmt.Sprintf("%s%016x%s", snapPrefix, uint64(99), snapSuffix))
	if err := os.WriteFile(bad, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir, Options{NoSync: true})
	defer l2.Close()
	if rec.SkippedSnapshots != 1 {
		t.Fatalf("skipped = %d", rec.SkippedSnapshots)
	}
	if string(rec.SnapshotState) != "good" || rec.SnapshotLSN != 1 {
		t.Fatalf("recovered snapshot %q at %d", rec.SnapshotState, rec.SnapshotLSN)
	}
}

func TestAppendErrors(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{NoSync: true})
	if _, err := l.Append(RecordFleet, make([]byte, MaxRecordBytes)); err != ErrTooLarge {
		t.Fatalf("oversized append err = %v", err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append(RecordFleet, []byte("x")); err != ErrClosed {
		t.Fatalf("append after close err = %v", err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

// TestConcurrentAppends drives the group-commit path from many goroutines:
// every append gets a unique LSN and every record survives replay.
func TestConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{SegmentBytes: 4096})
	const (
		workers = 8
		each    = 50
	)
	lsns := make([][]uint64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				lsn, err := l.Append(RecordSched, []byte(fmt.Sprintf("w%d-%d", w, i)))
				if err != nil {
					t.Errorf("append: %v", err)
					return
				}
				lsns[w] = append(lsns[w], lsn)
			}
		}(w)
	}
	wg.Wait()
	seen := make(map[uint64]bool)
	for _, ws := range lsns {
		for _, lsn := range ws {
			if seen[lsn] {
				t.Fatalf("duplicate lsn %d", lsn)
			}
			seen[lsn] = true
		}
	}
	if len(seen) != workers*each {
		t.Fatalf("%d unique lsns, want %d", len(seen), workers*each)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != workers*each {
		t.Fatalf("replayed %d, want %d", len(rec.Records), workers*each)
	}
}

// TestCloseFlushesPending ensures records in flight when Close is called
// are committed, matching the clean-shutdown path.
func TestCloseFlushesPending(t *testing.T) {
	dir := t.TempDir()
	l, _ := openT(t, dir, Options{})
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			// Appends racing Close either commit or report ErrClosed;
			// anything that returned an LSN must survive replay.
			l.Append(RecordFleet, []byte(fmt.Sprintf("pending-%d", i))) //nolint:errcheck
		}(i)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, rec := openT(t, dir, Options{})
	defer l2.Close()
	if len(rec.Records) != 16 {
		t.Fatalf("replayed %d records, want 16", len(rec.Records))
	}
}
