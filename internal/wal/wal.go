// Package wal is the control plane's durable-state subsystem: an
// append-only segmented write-ahead log plus periodic snapshots with log
// compaction. The paper's management plane survives restarts of any single
// software component because the data plane keeps forwarding while software
// recovers (§3.2.2); wal makes our reproduction match that by journaling
// every mutation of desired state so a restarted daemon can rebuild its
// intent store from disk and let the reconcile workers converge the live
// fabric to it. Recovery restores intent; reconciliation restores reality.
//
// On-disk layout inside a state directory:
//
//	wal-%016x.log   log segments, named by the LSN of their first record
//	snap-%016x.snap snapshots, named by the log LSN at capture time
//
// Each log record is framed as
//
//	u32le length | u32le crc32c | type byte | payload
//
// where length counts the type byte plus payload and the CRC (Castagnoli)
// covers the same bytes. Appends are group-committed: callers frame their
// record into the current batch under a mutex and kick a dedicated writer
// goroutine through a one-slot channel (the same idiom as the ctlrpc
// pipelined writer); the writer swaps the batch out, issues one write and
// one fsync for however many records accumulated, and wakes every waiter.
// Replay truncates a torn tail (short frame, bad length, or CRC mismatch)
// and discards any segments after the tear, so a crash at any byte offset
// leaves a valid prefix.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"syscall"

	"lightwave/internal/telemetry"
)

const (
	// DefaultSegmentBytes rotates segments at 8 MiB, small enough that
	// snapshot-driven compaction reclaims space promptly.
	DefaultSegmentBytes = 8 << 20

	// MaxRecordBytes caps one record (type byte + payload); a length
	// field beyond it is treated as a torn tail on replay.
	MaxRecordBytes = 16 << 20

	frameHeaderBytes = 8

	segPrefix  = "wal-"
	segSuffix  = ".log"
	snapPrefix = "snap-"
	snapSuffix = ".snap"
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// ErrClosed is returned by Append after Close.
var ErrClosed = errors.New("wal: log closed")

// ErrTooLarge is returned by Append for a record above MaxRecordBytes.
var ErrTooLarge = errors.New("wal: record too large")

// Options tunes a Log. The zero value is usable.
type Options struct {
	// SegmentBytes rotates to a new segment once the active one exceeds
	// this size; 0 means DefaultSegmentBytes.
	SegmentBytes int64
	// NoSync skips fsync on commit (tests only; crash durability is
	// gone, torn-tail handling still applies).
	NoSync bool
	// Metrics, when set, exposes wal_* counters and distributions.
	Metrics *telemetry.Registry
}

// Record is one replayed log entry.
type Record struct {
	LSN     uint64
	Type    RecordType
	Payload []byte
}

// Recovery reports what Open reconstructed from disk.
type Recovery struct {
	// SnapshotState is the latest valid snapshot payload, nil if none.
	SnapshotState []byte
	// SnapshotLSN is the log LSN at snapshot capture, 0 if none.
	SnapshotLSN uint64
	// Records are all surviving log records in LSN order, including
	// ones the snapshot already covers (callers skip by section LSN).
	Records []Record
	// TruncatedBytes counts bytes cut from a torn tail.
	TruncatedBytes int64
	// DroppedSegments counts whole segments discarded after a tear or
	// an inter-segment LSN gap.
	DroppedSegments int
	// SkippedSnapshots counts corrupt snapshot files passed over.
	SkippedSnapshots int
}

// batch accumulates framed records awaiting one write+fsync.
type batch struct {
	buf  []byte
	n    int
	last uint64
	err  error
	done chan struct{}
}

type segment struct {
	path  string
	first uint64
	last  uint64 // last LSN in the segment; maintained on rotation
}

// Log is an append-only segmented write-ahead log with group-commit
// batching. Safe for concurrent use.
type Log struct {
	dir  string
	opts Options
	met  *walMetrics

	mu     sync.Mutex
	cur    *batch
	seq    uint64 // next LSN to assign; LSNs start at 1
	closed bool
	broken error // sticky commit failure: refuse further appends

	kick     chan struct{}
	stop     chan struct{}
	wdone    chan struct{}
	stopOnce sync.Once

	// Writer-goroutine state (and Open, before the writer starts).
	f        *os.File
	segBytes int64

	// smu guards the segment list and snapshot bookkeeping, shared by
	// the writer (rotation) and Checkpoint (compaction).
	smu      sync.Mutex
	segments []segment
	snapLSN  uint64 // LSN of the latest snapshot on disk
}

// Open replays the state directory (creating it if needed) and returns a
// Log positioned after the last valid record plus a Recovery describing
// what survived. The caller owns applying Recovery; the Log is immediately
// appendable.
func Open(dir string, opts Options) (*Log, *Recovery, error) {
	if opts.SegmentBytes <= 0 {
		opts.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, fmt.Errorf("wal: %w", err)
	}
	l := &Log{
		dir:   dir,
		opts:  opts,
		met:   newWALMetrics(opts.Metrics),
		cur:   newBatch(),
		kick:  make(chan struct{}, 1),
		stop:  make(chan struct{}),
		wdone: make(chan struct{}),
	}
	rec, err := l.replay()
	if err != nil {
		return nil, nil, err
	}
	l.met.replayRecords.Add(int64(len(rec.Records)))
	if rec.TruncatedBytes > 0 || rec.DroppedSegments > 0 {
		l.met.replayTruncations.Inc()
	}
	l.met.segments.Set(float64(len(l.segments)))
	go l.writer()
	return l, rec, nil
}

func newBatch() *batch { return &batch{done: make(chan struct{})} }

// Append frames one record into the current batch, wakes the writer, and
// blocks until the batch holding it is durably committed. It returns the
// record's LSN.
func (l *Log) Append(typ RecordType, payload []byte) (uint64, error) {
	if len(payload)+1 > MaxRecordBytes {
		return 0, ErrTooLarge
	}
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return 0, ErrClosed
	}
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return 0, err
	}
	lsn := l.seq
	l.seq++
	b := l.cur
	b.buf = appendFrame(b.buf, typ, payload)
	b.n++
	b.last = lsn
	l.mu.Unlock()

	select {
	case l.kick <- struct{}{}:
	default:
	}
	<-b.done
	if b.err != nil {
		return 0, b.err
	}
	return lsn, nil
}

// LastLSN returns the highest LSN assigned so far (0 if none). Assigned
// records may still be in flight; callers that need durability should hold
// their own Append result instead.
func (l *Log) LastLSN() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq - 1
}

// Close flushes pending appends, stops the writer, and closes the active
// segment. Further Appends fail with ErrClosed.
func (l *Log) Close() error {
	l.mu.Lock()
	already := l.closed
	l.closed = true
	l.mu.Unlock()
	if already {
		<-l.wdone
		return nil
	}
	l.stopOnce.Do(func() { close(l.stop) })
	<-l.wdone
	if l.f != nil {
		err := l.f.Close()
		l.f = nil
		return err
	}
	return nil
}

func appendFrame(buf []byte, typ RecordType, payload []byte) []byte {
	body := len(payload) + 1
	var hdr [frameHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(body))
	crc := crc32.Update(0, castagnoli, []byte{byte(typ)})
	crc = crc32.Update(crc, castagnoli, payload)
	binary.LittleEndian.PutUint32(hdr[4:8], crc)
	buf = append(buf, hdr[:]...)
	buf = append(buf, byte(typ))
	return append(buf, payload...)
}

// writer is the group-commit goroutine: each wakeup swaps the current
// batch out and commits it with a single write+fsync.
func (l *Log) writer() {
	defer close(l.wdone)
	for {
		select {
		case <-l.stop:
			l.commitPending()
			return
		case <-l.kick:
			l.commitPending()
		}
	}
}

func (l *Log) commitPending() {
	for {
		l.mu.Lock()
		b := l.cur
		if b.n == 0 {
			l.mu.Unlock()
			return
		}
		l.cur = newBatch()
		l.mu.Unlock()

		err := l.commitBatch(b)
		if err != nil {
			l.mu.Lock()
			l.broken = fmt.Errorf("wal: commit failed: %w", err)
			l.mu.Unlock()
		}
		b.err = err
		close(b.done)
	}
}

func (l *Log) commitBatch(b *batch) error {
	if _, err := l.f.Write(b.buf); err != nil {
		return err
	}
	if !l.opts.NoSync {
		if err := l.f.Sync(); err != nil {
			return err
		}
		l.met.fsyncs.Inc()
	}
	l.segBytes += int64(len(b.buf))
	l.met.appends.Add(int64(b.n))
	l.met.appendBytes.Add(int64(len(b.buf)))
	l.met.batchRecords.Observe(float64(b.n))

	l.smu.Lock()
	l.segments[len(l.segments)-1].last = b.last
	l.smu.Unlock()

	if l.segBytes >= l.opts.SegmentBytes {
		return l.rotate(b.last + 1)
	}
	return nil
}

// rotate closes the active segment and starts a new one whose name carries
// the next LSN. Called only from the writer goroutine.
func (l *Log) rotate(nextLSN uint64) error {
	if err := l.f.Close(); err != nil {
		return err
	}
	f, path, err := createSegment(l.dir, nextLSN)
	if err != nil {
		return err
	}
	l.f = f
	l.segBytes = 0
	l.smu.Lock()
	l.segments = append(l.segments, segment{path: path, first: nextLSN, last: nextLSN - 1})
	l.met.segments.Set(float64(len(l.segments)))
	l.smu.Unlock()
	l.met.rotations.Inc()
	return nil
}

func createSegment(dir string, firstLSN uint64) (*os.File, string, error) {
	path := filepath.Join(dir, fmt.Sprintf("%s%016x%s", segPrefix, firstLSN, segSuffix))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_EXCL, 0o644)
	if err != nil {
		return nil, "", fmt.Errorf("wal: create segment: %w", err)
	}
	// The segment entry must be durable before records are acknowledged
	// out of it; a failed dirsync here poisons the append path instead
	// of being discovered at replay.
	if err := syncDir(dir); err != nil {
		_ = f.Close()
		_ = os.Remove(path)
		return nil, "", fmt.Errorf("wal: sync dir: %w", err)
	}
	return f, path, nil
}

// syncDir fsyncs a directory so renames and creates are durable. A
// filesystem that does not support directory fsync (EINVAL/ENOTSUP) is
// not an error; anything else is real and must reach callers whose
// acknowledged state depends on the entry being durable — the fsyncerr
// audit found the old best-effort version silently swallowing failures
// between snapshot rename and segment compaction, a crash window that
// loses acknowledged writes.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	if err != nil && (errors.Is(err, syscall.EINVAL) || errors.Is(err, syscall.ENOTSUP)) {
		return nil
	}
	return err
}

// replay scans snapshots and segments, truncates any torn tail, and
// positions the log for appending.
func (l *Log) replay() (*Recovery, error) {
	entries, err := os.ReadDir(l.dir)
	if err != nil {
		return nil, fmt.Errorf("wal: %w", err)
	}
	var segs []segment
	var snaps []uint64
	for _, e := range entries {
		name := e.Name()
		if first, ok := parseName(name, segPrefix, segSuffix); ok {
			segs = append(segs, segment{path: filepath.Join(l.dir, name), first: first})
		} else if lsn, ok := parseName(name, snapPrefix, snapSuffix); ok {
			snaps = append(snaps, lsn)
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	sort.Slice(snaps, func(i, j int) bool { return snaps[i] > snaps[j] })

	rec := &Recovery{}

	// Newest valid snapshot wins; corrupt ones are skipped, not fatal.
	for _, lsn := range snaps {
		state, err := readSnapshotFile(l.snapPath(lsn))
		if err != nil {
			rec.SkippedSnapshots++
			continue
		}
		rec.SnapshotState = state
		rec.SnapshotLSN = lsn
		l.snapLSN = lsn
		break
	}

	// Scan segments in order. A tear truncates its segment and drops
	// everything after it; an LSN gap between segments (should not
	// happen — compaction only removes prefixes) is treated the same.
	last := uint64(0)
	for i := 0; i < len(segs); i++ {
		s := &segs[i]
		// The first listed segment chains off the snapshot (earlier
		// segments were compacted away); every later one must continue
		// exactly where its predecessor ended — even a predecessor that
		// recovered zero records, which happens when a crash truncated it
		// to nothing.
		if i > 0 && s.first != last+1 {
			for j := i; j < len(segs); j++ {
				if err := os.Remove(segs[j].path); err != nil {
					return nil, fmt.Errorf("wal: drop segment: %w", err)
				}
				rec.DroppedSegments++
			}
			segs = segs[:i]
			break
		}
		recs, valid, size, err := scanSegment(s.path, s.first)
		if err != nil {
			return nil, err
		}
		rec.Records = append(rec.Records, recs...)
		s.last = s.first + uint64(len(recs)) - 1
		if len(recs) == 0 {
			s.last = s.first - 1
		}
		last = s.last
		if valid < size { // torn tail
			rec.TruncatedBytes += size - valid
			if err := os.Truncate(s.path, valid); err != nil {
				return nil, fmt.Errorf("wal: truncate torn tail: %w", err)
			}
			for j := i + 1; j < len(segs); j++ {
				if err := os.Remove(segs[j].path); err != nil {
					return nil, fmt.Errorf("wal: drop segment: %w", err)
				}
				rec.DroppedSegments++
			}
			segs = segs[:i+1]
			break
		}
	}
	if rec.TruncatedBytes > 0 || rec.DroppedSegments > 0 {
		// Best-effort: a resurrected torn tail is re-truncated by the
		// next replay, so durability of the cleanup is not load-bearing.
		_ = syncDir(l.dir)
	}

	// Position the sequence after everything we know about: surviving
	// records and the snapshot LSN (segments may be fully compacted).
	l.seq = 1
	if n := len(rec.Records); n > 0 {
		l.seq = rec.Records[n-1].LSN + 1
	}
	if rec.SnapshotLSN >= l.seq {
		l.seq = rec.SnapshotLSN + 1
	}

	// Open the active segment for appending, or start a fresh one.
	if len(segs) > 0 {
		act := segs[len(segs)-1]
		f, err := os.OpenFile(act.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, fmt.Errorf("wal: open segment: %w", err)
		}
		st, err := f.Stat()
		if err != nil {
			_ = f.Close()
			return nil, fmt.Errorf("wal: stat segment: %w", err)
		}
		l.f = f
		l.segBytes = st.Size()
		l.segments = segs
	} else {
		f, path, err := createSegment(l.dir, l.seq)
		if err != nil {
			return nil, err
		}
		l.f = f
		l.segBytes = 0
		l.segments = []segment{{path: path, first: l.seq, last: l.seq - 1}}
	}
	return rec, nil
}

// scanSegment decodes records from one segment file. It returns the
// decoded records, the byte offset of the last valid frame end, and the
// file size; valid < size means a torn tail.
func scanSegment(path string, firstLSN uint64) ([]Record, int64, int64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, 0, 0, fmt.Errorf("wal: read segment: %w", err)
	}
	var recs []Record
	off := 0
	lsn := firstLSN
	for {
		if len(data)-off < frameHeaderBytes {
			break
		}
		body := int(binary.LittleEndian.Uint32(data[off : off+4]))
		if body < 1 || body > MaxRecordBytes || len(data)-off-frameHeaderBytes < body {
			break
		}
		want := binary.LittleEndian.Uint32(data[off+4 : off+8])
		frame := data[off+frameHeaderBytes : off+frameHeaderBytes+body]
		if crc32.Checksum(frame, castagnoli) != want {
			break
		}
		payload := make([]byte, body-1)
		copy(payload, frame[1:])
		recs = append(recs, Record{LSN: lsn, Type: RecordType(frame[0]), Payload: payload})
		lsn++
		off += frameHeaderBytes + body
	}
	return recs, int64(off), int64(len(data)), nil
}

func parseName(name, prefix, suffix string) (uint64, bool) {
	if len(name) != len(prefix)+16+len(suffix) ||
		name[:len(prefix)] != prefix || name[len(name)-len(suffix):] != suffix {
		return 0, false
	}
	var v uint64
	if _, err := fmt.Sscanf(name[len(prefix):len(prefix)+16], "%016x", &v); err != nil {
		return 0, false
	}
	return v, true
}

func (l *Log) snapPath(lsn uint64) string {
	return filepath.Join(l.dir, fmt.Sprintf("%s%016x%s", snapPrefix, lsn, snapSuffix))
}

// Status is a point-in-time summary for the wal-status RPC and lwfctl.
type Status struct {
	Dir         string
	LastLSN     uint64
	SnapshotLSN uint64
	Segments    int
	TotalBytes  int64
	Appends     int64
	AppendBytes int64
	Fsyncs      int64
	Snapshots   int64
	Compactions int64
}

// Status reports the log's current shape. TotalBytes stats the live
// segment files; failures there degrade to 0 rather than erroring.
func (l *Log) Status() Status {
	st := Status{
		Dir:         l.dir,
		LastLSN:     l.LastLSN(),
		Appends:     l.met.appends.Value(),
		AppendBytes: l.met.appendBytes.Value(),
		Fsyncs:      l.met.fsyncs.Value(),
		Snapshots:   l.met.snapshots.Value(),
		Compactions: l.met.compactions.Value(),
	}
	l.smu.Lock()
	st.SnapshotLSN = l.snapLSN
	st.Segments = len(l.segments)
	for _, s := range l.segments {
		if fi, err := os.Stat(s.path); err == nil {
			st.TotalBytes += fi.Size()
		}
	}
	l.smu.Unlock()
	return st
}

type walMetrics struct {
	appends           *telemetry.Counter
	appendBytes       *telemetry.Counter
	fsyncs            *telemetry.Counter
	rotations         *telemetry.Counter
	snapshots         *telemetry.Counter
	compactions       *telemetry.Counter
	replayRecords     *telemetry.Counter
	replayTruncations *telemetry.Counter
	segments          *telemetry.Gauge
	batchRecords      *telemetry.Distribution
}

func newWALMetrics(reg *telemetry.Registry) *walMetrics {
	if reg == nil {
		reg = telemetry.NewRegistry()
	}
	return &walMetrics{
		appends:           reg.Counter("wal_appends_total"),
		appendBytes:       reg.Counter("wal_append_bytes_total"),
		fsyncs:            reg.Counter("wal_fsyncs_total"),
		rotations:         reg.Counter("wal_segment_rotations_total"),
		snapshots:         reg.Counter("wal_snapshots_total"),
		compactions:       reg.Counter("wal_compacted_segments_total"),
		replayRecords:     reg.Counter("wal_replay_records_total"),
		replayTruncations: reg.Counter("wal_replay_truncations_total"),
		segments:          reg.Gauge("wal_segments"),
		batchRecords:      reg.Distribution("wal_batch_records", 1, 2, 4, 8, 16, 32, 64, 128),
	}
}
