package wal_test

// Restart equivalence: a daemon that journals a scripted mutation stream,
// snapshots on SIGTERM, and reopens from its -state-dir must answer
// fleet-status and sched-status exactly like a daemon that ran the same
// stream uninterrupted. The harness below mirrors cmd/lwfleetd's boot and
// shutdown ordering against a real FleetServer on a loopback socket.

import (
	"context"
	"fmt"
	"net"
	"reflect"
	"sort"
	"testing"
	"time"

	"lightwave/internal/core"
	"lightwave/internal/ctlrpc"
	"lightwave/internal/fleet"
	"lightwave/internal/sched"
	"lightwave/internal/superpod"
	"lightwave/internal/wal"
)

const (
	restartPods  = 3
	restartCubes = 8
)

// session is one daemon lifetime: manager, scheduler, RPC server, client.
type session struct {
	m      *fleet.Manager
	s      *sched.Scheduler
	cli    *ctlrpc.Client
	cancel context.CancelFunc
	done   chan error
}

// startSession boots a control plane the way cmd/lwfleetd does. store may
// be nil (durability disabled); recover replays the store's state first,
// mirroring the daemon's BeginRecovery/EndRecovery bracket.
func startSession(t *testing.T, store *wal.Store, recover bool) *session {
	t.Helper()
	var journal fleet.Journal
	if store != nil {
		journal = store
		if recover {
			store.BeginRecovery()
		}
	}
	m := fleet.NewManager(fleet.Options{Journal: journal})
	podNames := make([]string, restartPods)
	for i := range podNames {
		podNames[i] = fmt.Sprintf("pod%d", i)
		f, err := core.New(core.DefaultConfig(restartCubes))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddPod(podNames[i], fleet.NewFabricBackend(f, nil)); err != nil {
			t.Fatal(err)
		}
	}
	if store != nil && recover {
		if err := store.RecoverFleet(m); err != nil {
			t.Fatalf("RecoverFleet: %v", err)
		}
	}
	// The scheduler owns pod2; manual apply-intent mutations target
	// pod0/pod1, so the mirror's free-cube view stays truthful.
	s, err := sched.NewScheduler(sched.SchedulerConfig{
		Pods:           []string{"pod2"},
		InstalledCubes: restartCubes,
		Ops:            superpod.FleetOps{M: m},
	})
	if err != nil {
		t.Fatal(err)
	}
	if store != nil {
		if recover {
			if _, _, err := store.RecoverSched(s); err != nil {
				t.Fatalf("RecoverSched: %v", err)
			}
		}
		store.AttachSched(s)
		s.SetJournal(store)
		if recover {
			store.EndRecovery()
		}
	}

	srv := ctlrpc.NewFleetServer(m)
	srv.SetSched(ctlrpc.SchedulerProvider{S: s})
	if store != nil {
		srv.SetWAL(ctlrpc.StoreWALProvider{Store: store})
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- srv.Serve(ctx, lis) }()
	cli, err := ctlrpc.Dial(lis.Addr().String(), 3*time.Second)
	if err != nil {
		cancel()
		t.Fatal(err)
	}
	return &session{m: m, s: s, cli: cli, cancel: cancel, done: done}
}

// shutdown mirrors the daemon's stop ordering: listener down, runners
// drained, then (for the crash-restart caller) snapshot and close.
func (ss *session) shutdown(t *testing.T) {
	t.Helper()
	ss.cli.Close()
	ss.cancel()
	<-ss.done
	ss.m.Close()
}

// mutatePhase1 is the pre-checkpoint half of the scripted stream.
func mutatePhase1(t *testing.T, ss *session) {
	t.Helper()
	if _, err := ss.cli.ApplyIntent(ctlrpc.ApplyIntentParams{
		Pod:    "pod0",
		Slices: []ctlrpc.SliceIntentSpec{{Name: "train", Shape: [3]int{4, 4, 16}, Cubes: []int{0, 1, 2, 3}}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.cli.ApplyIntent(ctlrpc.ApplyIntentParams{
		Pod:    "pod1",
		Slices: []ctlrpc.SliceIntentSpec{{Name: "batch", Shape: [3]int{4, 4, 16}, Cubes: []int{0, 1, 2, 3}}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.cli.SchedSubmit(2, 100); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.cli.SchedSubmit(2, 40); err != nil {
		t.Fatal(err)
	}
	if err := ss.s.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
}

// mutatePhase2 is the post-checkpoint half — it lands in the journal tail
// after the mid-stream snapshot.
func mutatePhase2(t *testing.T, ss *session) {
	t.Helper()
	if _, err := ss.cli.ApplyIntent(ctlrpc.ApplyIntentParams{
		Pod:    "pod0",
		Slices: []ctlrpc.SliceIntentSpec{{Name: "aux", Shape: [3]int{4, 4, 16}, Cubes: []int{4, 5, 6, 7}}},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.cli.ApplyIntent(ctlrpc.ApplyIntentParams{
		Pod:    "pod1",
		Slices: []ctlrpc.SliceIntentSpec{{Name: "batch", Remove: true}},
	}); err != nil {
		t.Fatal(err)
	}
	// An OCS drain/undrain pair exercises the drain journal ops without
	// leaving behavior that would defer convergence.
	ocs := 9
	if err := ss.cli.Drain("pod1", &ocs); err != nil {
		t.Fatal(err)
	}
	if err := ss.cli.Undrain("pod1", &ocs); err != nil {
		t.Fatal(err)
	}
	if _, err := ss.cli.SchedSubmit(4, 20); err != nil {
		t.Fatal(err)
	}
	if err := ss.s.AdvanceTo(12); err != nil {
		t.Fatal(err)
	}
}

// waitConverged polls fleet-status until every pod converged.
func waitConverged(t *testing.T, ss *session) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for {
		st, err := ss.cli.FleetStatus()
		if err != nil {
			t.Fatal(err)
		}
		all := len(st.Pods) == restartPods
		for _, p := range st.Pods {
			if !p.Converged {
				all = false
			}
		}
		if all && st.QueueDepth == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("fleet never converged: %+v", st)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// normalizeFleet sorts everything order-insensitive so two equal fleets
// compare equal regardless of map iteration order.
func normalizeFleet(st ctlrpc.FleetStatusResult) ctlrpc.FleetStatusResult {
	sort.Slice(st.Pods, func(i, j int) bool { return st.Pods[i].Name < st.Pods[j].Name })
	for i := range st.Pods {
		sort.Strings(st.Pods[i].DesiredSlices)
		sort.Strings(st.Pods[i].ActualSlices)
		sort.Ints(st.Pods[i].DrainedOCS)
	}
	return st
}

func capture(t *testing.T, ss *session) (ctlrpc.FleetStatusResult, ctlrpc.SchedStatusResult) {
	t.Helper()
	fs, err := ss.cli.FleetStatus()
	if err != nil {
		t.Fatal(err)
	}
	sc, err := ss.cli.SchedStatus()
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(sc.Pods)
	return normalizeFleet(fs), sc
}

func TestRestartEquivalence(t *testing.T) {
	// Run A: the uninterrupted control — no durability at all.
	ctl := startSession(t, nil, false)
	mutatePhase1(t, ctl)
	mutatePhase2(t, ctl)
	waitConverged(t, ctl)
	wantFleet, wantSched := capture(t, ctl)
	ctl.shutdown(t)

	// Run B: journal the same stream, checkpoint mid-stream (so recovery
	// crosses a snapshot + tail boundary), SIGTERM-snapshot, shut down.
	dir := t.TempDir()
	store, err := wal.OpenStore(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	ss := startSession(t, store, false)
	mutatePhase1(t, ss)
	if err := store.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	mutatePhase2(t, ss)
	waitConverged(t, ss)
	ss.shutdown(t)
	if err := store.Checkpoint(); err != nil { // the SIGTERM snapshot
		t.Fatal(err)
	}
	if err := store.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen from the state dir and recover, daemon-style.
	store2, err := wal.OpenStore(dir, wal.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store2.Close()
	st := store2.Status()
	if st.TruncatedBytes != 0 || st.DroppedSegments != 0 || st.ReplayErrors != 0 {
		t.Fatalf("clean shutdown replayed dirty: %+v", st)
	}
	ss2 := startSession(t, store2, true)
	waitConverged(t, ss2)
	gotFleet, gotSched := capture(t, ss2)
	// wal-status over RPC reports the recovered substrate.
	ws, err := ss2.cli.WALStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !ws.Enabled || ws.ReplayRecords == 0 || ws.FleetDigest == "" {
		t.Errorf("wal-status after recovery = %+v", ws)
	}
	ss2.shutdown(t)

	if !reflect.DeepEqual(wantFleet, gotFleet) {
		t.Errorf("fleet-status diverged after restart:\nwant %+v\ngot  %+v", wantFleet, gotFleet)
	}
	if !reflect.DeepEqual(wantSched, gotSched) {
		t.Errorf("sched-status diverged after restart:\nwant %+v\ngot  %+v", wantSched, gotSched)
	}
}
