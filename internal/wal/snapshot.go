// Snapshots and log compaction. A snapshot file carries an opaque state
// payload produced by a Snapshotter plus the covered LSN: every log record
// with LSN ≤ covered is redundant with the payload, so segments wholly
// below it can be deleted. Snapshot files are written to a temp name,
// fsynced, then renamed — a crash mid-snapshot leaves the previous
// snapshot authoritative, and replay skips corrupt snapshot files.
package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
)

// Snapshotter captures a consistent copy of the application state guarded
// by the log. The covered LSN must be such that replaying records with
// LSN > covered on top of state reproduces the live state; returning a
// conservative (smaller) value is always safe, it just compacts less.
type Snapshotter interface {
	Snapshot() (state []byte, covered uint64, err error)
}

// snapshot file layout: u32le length | u32le crc32c | u64le covered | state
const snapHeaderBytes = 8

// Checkpoint captures a snapshot, makes it durable, and compacts segments
// the snapshot covers. Safe to call while appends are in flight: the
// Snapshotter's covered LSN bounds what is deleted.
func (l *Log) Checkpoint(s Snapshotter) error {
	state, covered, err := s.Snapshot()
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	atLSN := l.LastLSN()
	if covered > atLSN {
		covered = atLSN
	}

	path := l.snapPath(atLSN)
	if err := writeSnapshotFile(path, covered, state, !l.opts.NoSync); err != nil {
		return err
	}
	l.met.snapshots.Inc()

	l.smu.Lock()
	prev := l.snapLSN
	l.snapLSN = atLSN
	// Compact: drop every non-active segment wholly ≤ covered, and any
	// older snapshot files (the newest one is self-sufficient).
	removed := 0
	keep := l.segments[:0]
	for i, s := range l.segments {
		if i < len(l.segments)-1 && s.last <= covered && s.last >= s.first {
			if err := os.Remove(s.path); err == nil {
				removed++
				continue
			}
		}
		keep = append(keep, s)
	}
	l.segments = keep
	l.met.segments.Set(float64(len(l.segments)))
	l.smu.Unlock()

	if prev != 0 && prev != atLSN {
		_ = os.Remove(l.snapPath(prev))
	}
	// Older snapshots from previous processes may remain if they were
	// not the one replay selected; sweep them too.
	if entries, err := os.ReadDir(l.dir); err == nil {
		for _, e := range entries {
			if lsn, ok := parseName(e.Name(), snapPrefix, snapSuffix); ok && lsn != atLSN {
				_ = os.Remove(filepath.Join(l.dir, e.Name()))
			}
		}
	}
	if removed > 0 {
		l.met.compactions.Add(int64(removed))
	}
	// Best-effort: a resurrected pre-snapshot segment or stale snapshot
	// is ignored (or re-swept) by the next replay.
	_ = syncDir(l.dir)
	return nil
}

func writeSnapshotFile(path string, covered uint64, state []byte, sync bool) error {
	body := make([]byte, snapHeaderBytes+len(state))
	binary.LittleEndian.PutUint64(body[:8], covered)
	copy(body[snapHeaderBytes:], state)
	frame := make([]byte, frameHeaderBytes+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(body, castagnoli))
	copy(frame[frameHeaderBytes:], body)

	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_WRONLY|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if _, err := f.Write(frame); err != nil {
		_ = f.Close()
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			_ = f.Close()
			os.Remove(tmp)
			return fmt.Errorf("wal: snapshot: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("wal: snapshot: %w", err)
	}
	if sync {
		// The snapshot must be findable after a crash before Checkpoint
		// is allowed to compact the segments it covers; a swallowed
		// dirsync failure here was the data-loss window the fsyncerr
		// audit flagged.
		if err := syncDir(filepath.Dir(path)); err != nil {
			return fmt.Errorf("wal: snapshot dirsync: %w", err)
		}
	}
	return nil
}

// readSnapshotFile validates and returns a snapshot's state payload.
func readSnapshotFile(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if len(data) < frameHeaderBytes+snapHeaderBytes {
		return nil, fmt.Errorf("wal: snapshot %s: short file", filepath.Base(path))
	}
	body := int(binary.LittleEndian.Uint32(data[0:4]))
	if body != len(data)-frameHeaderBytes {
		return nil, fmt.Errorf("wal: snapshot %s: bad length", filepath.Base(path))
	}
	want := binary.LittleEndian.Uint32(data[4:8])
	if crc32.Checksum(data[frameHeaderBytes:], castagnoli) != want {
		return nil, fmt.Errorf("wal: snapshot %s: bad checksum", filepath.Base(path))
	}
	return data[frameHeaderBytes+snapHeaderBytes:], nil
}

// SnapshotCovered re-reads a snapshot file's covered LSN; used by tests.
func SnapshotCovered(path string) (uint64, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	if len(data) < frameHeaderBytes+snapHeaderBytes {
		return 0, fmt.Errorf("wal: short snapshot")
	}
	return binary.LittleEndian.Uint64(data[frameHeaderBytes : frameHeaderBytes+snapHeaderBytes]), nil
}
