package wal

import (
	"bytes"
	"testing"
	"time"

	"lightwave/internal/core"
	"lightwave/internal/fleet"
	"lightwave/internal/topo"
)

func slice(name string, cubes ...int) fleet.SliceIntent {
	return fleet.SliceIntent{Name: name, Shape: topo.Shape{X: 4, Y: 4, Z: 16}, Cubes: cubes}
}

func TestFleetStateFold(t *testing.T) {
	fs := NewFleetState()
	fs.Apply(fleet.JournalEntry{Op: fleet.OpAddPod, Pod: "pod0"})
	s := slice("train", 0, 1, 2, 3)
	fs.Apply(fleet.JournalEntry{Op: fleet.OpSetSlice, Pod: "pod0", Slice: &s})
	s2 := slice("infer", 4)
	fs.Apply(fleet.JournalEntry{Op: fleet.OpSetSlice, Pod: "pod0", Slice: &s2})
	fs.Apply(fleet.JournalEntry{Op: fleet.OpRemoveSlice, Pod: "pod0", Name: "infer"})

	p := fs.Pods["pod0"]
	if p == nil || len(p.Slices) != 1 {
		t.Fatalf("pod0 state = %+v", p)
	}
	if got := p.Slices["train"]; got.Name != "train" || len(got.Cubes) != 4 {
		t.Fatalf("train slice = %+v", got)
	}

	// Drain edges, including OCS drain dedup + sorted order.
	fs.Apply(fleet.JournalEntry{Op: fleet.OpDrainOCS, Pod: "pod0", OCS: 9})
	fs.Apply(fleet.JournalEntry{Op: fleet.OpDrainOCS, Pod: "pod0", OCS: 3})
	fs.Apply(fleet.JournalEntry{Op: fleet.OpDrainOCS, Pod: "pod0", OCS: 9})
	if got := p.DrainedOCS; len(got) != 2 || got[0] != 3 || got[1] != 9 {
		t.Fatalf("drained ocs = %v", got)
	}
	fs.Apply(fleet.JournalEntry{Op: fleet.OpUndrainOCS, Pod: "pod0", OCS: 3})
	if got := p.DrainedOCS; len(got) != 1 || got[0] != 9 {
		t.Fatalf("drained ocs after undrain = %v", got)
	}
	fs.Apply(fleet.JournalEntry{Op: fleet.OpUndrainOCS, Pod: "pod0", OCS: 9})
	if p.DrainedOCS != nil {
		t.Fatalf("drained ocs not cleared: %v", p.DrainedOCS)
	}

	// Quarantine is informational but folded; undrain clears it.
	fs.Apply(fleet.JournalEntry{Op: fleet.OpQuarantine, Pod: "pod0", Detail: "probe failed"})
	fs.Apply(fleet.JournalEntry{Op: fleet.OpDrainPod, Pod: "pod0"})
	if !p.Quarantined || !p.Drained {
		t.Fatalf("pod0 = %+v", p)
	}
	fs.Apply(fleet.JournalEntry{Op: fleet.OpUndrainPod, Pod: "pod0"})
	if p.Quarantined || p.Drained {
		t.Fatalf("undrain left %+v", p)
	}

	// Replace swaps the whole slice set atomically.
	fs.Apply(fleet.JournalEntry{Op: fleet.OpReplace, Pod: "pod0", Slices: []fleet.SliceIntent{slice("a"), slice("b")}})
	if len(p.Slices) != 2 || p.Slices["train"].Name != "" {
		t.Fatalf("replace left %+v", p.Slices)
	}

	fs.Apply(fleet.JournalEntry{Op: fleet.OpRemovePod, Pod: "pod0"})
	if fs.Pods["pod0"] != nil {
		t.Fatal("pod0 survived remove")
	}

	// Unknown ops are ignored for forward compatibility.
	fs.Apply(fleet.JournalEntry{Op: "future-op", Pod: "podX"})
	if fs.Pods["podX"] != nil {
		t.Fatal("unknown op mutated state")
	}
}

// TestFleetStateEncodeDeterministic: equal states built in different orders
// must encode to equal bytes — the digest the crash-restart evaluator
// compares depends on it.
func TestFleetStateEncodeDeterministic(t *testing.T) {
	build := func(order []string) *FleetState {
		fs := NewFleetState()
		for _, pod := range order {
			fs.Apply(fleet.JournalEntry{Op: fleet.OpAddPod, Pod: pod})
		}
		for _, pod := range order {
			for _, name := range []string{"z-slice", "a-slice", "m-slice"} {
				s := slice(pod + "-" + name)
				fs.Apply(fleet.JournalEntry{Op: fleet.OpSetSlice, Pod: pod, Slice: &s})
			}
			fs.Apply(fleet.JournalEntry{Op: fleet.OpDrainOCS, Pod: pod, OCS: 7})
		}
		return fs
	}
	a := build([]string{"pod0", "pod1", "pod2"})
	b := build([]string{"pod2", "pod0", "pod1"})

	ea, err := a.Encode()
	if err != nil {
		t.Fatal(err)
	}
	eb, err := b.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, eb) {
		t.Fatalf("encodings diverge:\n%s\n%s", ea, eb)
	}
	da, err := a.Digest()
	if err != nil {
		t.Fatal(err)
	}
	db, err := b.Digest()
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Fatal("digests diverge for equal states")
	}

	// Round trip preserves the canonical bytes.
	dec, err := DecodeFleetState(ea)
	if err != nil {
		t.Fatal(err)
	}
	e2, err := dec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(ea, e2) {
		t.Fatalf("decode/encode round trip diverged:\n%s\n%s", ea, e2)
	}
}

// TestFleetStateApplyTo restores a recovered intent store into a live
// manager and watches the reconciler converge the real fabric onto it.
func TestFleetStateApplyTo(t *testing.T) {
	fs := NewFleetState()
	fs.Apply(fleet.JournalEntry{Op: fleet.OpAddPod, Pod: "pod0"})
	s := slice("train", 0, 1, 2, 3)
	fs.Apply(fleet.JournalEntry{Op: fleet.OpSetSlice, Pod: "pod0", Slice: &s})
	fs.Apply(fleet.JournalEntry{Op: fleet.OpDrainOCS, Pod: "pod0", OCS: 11})
	// A pod on disk but absent from the running config is skipped.
	fs.Apply(fleet.JournalEntry{Op: fleet.OpAddPod, Pod: "ghost"})

	m := fleet.NewManager(fleet.Options{})
	defer m.Close()
	f, err := core.New(core.DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	if err := m.AddPod("pod0", fleet.NewFabricBackend(f, nil)); err != nil {
		t.Fatal(err)
	}

	if err := fs.ApplyTo(m); err != nil {
		t.Fatal(err)
	}
	// The restored OCS drain must also be restored in behavior: new slice
	// application is deferred while it holds, exactly as before the crash.
	ps, err := m.PodStatus("pod0")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.DrainedOCS) != 1 || ps.DrainedOCS[0] != 11 {
		t.Fatalf("ocs drain not restored: %+v", ps)
	}
	if len(ps.DesiredSlices) != 1 || ps.DesiredSlices[0] != "train" {
		t.Fatalf("intent not restored: %+v", ps)
	}
	// Lifting the drain lets the reconciler converge the restored intent.
	if err := m.UndrainOCS("pod0", 11); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ps, err := m.PodStatus("pod0")
		if err != nil {
			t.Fatal(err)
		}
		if ps.Converged && len(ps.ActualSlices) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pod0 never converged on recovered intent: %+v", ps)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
