package te

import (
	"testing"

	"lightwave/internal/dcn"
	"lightwave/internal/fleet"
	"lightwave/internal/ocs"
	"lightwave/internal/telemetry"
)

func testLoopConfig() Config {
	return Config{
		Blocks: 8, Uplinks: 14, TrunkBps: 50e9,
		EpochSeconds:   1,
		CooldownEpochs: 2,
		Predictor:      PredictorConfig{Warmup: 2},
	}
}

// feed integrates one rate matrix and steps the loop.
func feed(t *testing.T, l *Loop, m [][]float64) *Plan {
	t.Helper()
	if err := l.ObserveRates(m); err != nil {
		t.Fatal(err)
	}
	plan, err := l.Step()
	if err != nil {
		t.Fatal(err)
	}
	return plan
}

func TestLoopConvergesAndRespectsCooldown(t *testing.T) {
	old := Registry()
	defer SetRegistry(old)
	reg := telemetry.NewRegistry()
	SetRegistry(reg)

	l, err := NewLoop(testLoopConfig())
	if err != nil {
		t.Fatal(err)
	}
	demand := skewed(8, [2]int{0, 1}, [2]int{2, 3}, [2]int{4, 5})
	var reconfigEpochs []int
	for e := 0; e < 12; e++ {
		plan := feed(t, l, demand)
		if plan.Reconfigure {
			reconfigEpochs = append(reconfigEpochs, e)
		}
	}
	st := l.Status()
	if st.Reconfigs == 0 {
		t.Fatalf("loop never reconfigured on steady skew: %+v", st)
	}
	for i := 1; i < len(reconfigEpochs); i++ {
		if d := reconfigEpochs[i] - reconfigEpochs[i-1]; d < 2 {
			t.Errorf("reconfigs %d epochs apart, cooldown is 2", d)
		}
	}
	// Once converged on steady demand, the loop must go quiet: the last
	// epochs hold because the topology is already optimal.
	lastPlan := feed(t, l, demand)
	if lastPlan.Reconfigure {
		t.Error("loop still reconfiguring after convergence on steady demand")
	}
	if st.Epoch != 12 {
		t.Errorf("epoch = %d, want 12", st.Epoch)
	}
	if st.MinResidualFraction < 0.75-1e-9 {
		t.Errorf("min residual %g below default floor 0.75", st.MinResidualFraction)
	}
	if got := reg.Counter("te_epochs_total").Value(); got != 13 {
		t.Errorf("te_epochs_total = %d, want 13", got)
	}
	if got := reg.Counter("te_reconfigs_total").Value(); got != int64(st.Reconfigs) {
		t.Errorf("te_reconfigs_total = %d, status says %d", got, st.Reconfigs)
	}
}

func TestLoopFabricApplierKeepsHardwareInSync(t *testing.T) {
	fabric, err := dcn.NewFabric(8, 16, ocs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := testLoopConfig()
	cfg.Applier = &FabricApplier{F: fabric}
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Seed the hardware with the loop's initial mesh.
	if _, err := fabric.Program(l.Current()); err != nil {
		t.Fatal(err)
	}
	demand := skewed(8, [2]int{0, 1}, [2]int{2, 3})
	for e := 0; e < 10; e++ {
		feed(t, l, demand)
		if !fabric.Matches(l.Current()) {
			t.Fatalf("epoch %d: hardware diverged from the loop's logical topology", e)
		}
	}
	if l.Status().Reconfigs == 0 {
		t.Fatal("loop never exercised the applier")
	}
}

func TestFleetApplierDrainsThroughManager(t *testing.T) {
	fabric, err := dcn.NewFabric(8, 16, ocs.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := fleet.NewManager(fleet.Options{})
	defer m.Close()
	sub := m.Subscribe(256)

	ap, err := NewFleetApplier(m, "dcn", fabric)
	if err != nil {
		t.Fatal(err)
	}
	cfg := testLoopConfig()
	cfg.Applier = ap
	l, err := NewLoop(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fabric.Program(l.Current()); err != nil {
		t.Fatal(err)
	}
	demand := skewed(8, [2]int{0, 1}, [2]int{2, 3})
	for e := 0; e < 8; e++ {
		feed(t, l, demand)
	}
	st := l.Status()
	if st.Reconfigs == 0 {
		t.Fatal("loop never reconfigured")
	}
	if !fabric.Matches(l.Current()) {
		t.Fatal("hardware diverged from the loop's logical topology")
	}
	// Every reconfiguration stage must have surfaced drain/undrain events
	// on the manager's stream, and drains must be balanced.
	drains, undrains := 0, 0
	for {
		select {
		case ev := <-sub.Events():
			switch ev.Type {
			case fleet.EventDrained:
				drains++
			case fleet.EventUndrained:
				undrains++
			}
			continue
		default:
		}
		break
	}
	if drains == 0 {
		t.Fatal("no OCS drain events reached the fleet manager")
	}
	if drains != undrains {
		t.Errorf("unbalanced drains: %d drains, %d undrains", drains, undrains)
	}
	// Nothing should be left drained.
	ps, err := m.PodStatus("dcn")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps.DrainedOCS) != 0 {
		t.Errorf("OCSes still drained after apply: %v", ps.DrainedOCS)
	}
	if ps.Circuits == 0 {
		t.Error("pod status reports no circuits")
	}
	// The DCN pod must reject slice intents.
	if err := m.SetSliceIntent("dcn", fleet.SliceIntent{}); err == nil {
		t.Error("empty slice intent accepted")
	}
}
