package te

import (
	"fmt"

	"lightwave/internal/cost"
	"lightwave/internal/dcn"
	"lightwave/internal/par"
)

// PlannerConfig parameterizes the reconfiguration planner.
type PlannerConfig struct {
	Blocks, Uplinks int
	// TrunkBps is the per-trunk, per-direction rate used for throughput
	// and drained-capacity accounting.
	TrunkBps float64
	// MinGain is the hysteresis threshold: reconfigure only when the
	// predicted throughput gain (target/current - 1 on the predicted
	// matrix) exceeds it (default 0.02). Without it the loop would churn
	// circuits every epoch chasing noise.
	MinGain float64
	// CapacityFloor is the minimum fraction of the fabric's trunk
	// capacity that must stay in service during every stage of a
	// reconfiguration (default 0.75). Plans that cannot be staged above
	// the floor are rejected.
	CapacityFloor float64
	// Tech is the OCS technology whose switching time costs the plan
	// (default the Table C.1 MEMS row).
	Tech cost.OCSTechnology
	// Switches is the number of OCSes sharing each stage's reprogram
	// work (default Uplinks).
	Switches int
	// StageOverheadSeconds is the routing drain/undrain overhead paid
	// per stage on top of the optical switching time (default 1s).
	StageOverheadSeconds float64
}

func (c PlannerConfig) withDefaults() PlannerConfig {
	if c.MinGain <= 0 {
		c.MinGain = 0.02
	}
	if c.CapacityFloor <= 0 || c.CapacityFloor >= 1 {
		c.CapacityFloor = 0.75
	}
	if c.Tech.Name == "" {
		c.Tech = cost.Technologies()[0] // MEMS
	}
	if c.Switches <= 0 {
		c.Switches = c.Uplinks
	}
	if c.StageOverheadSeconds <= 0 {
		c.StageOverheadSeconds = 1
	}
	return c
}

// Stage is one drain -> OCS reprogram -> undrain step of a plan: the
// trunks in Tear are drained and torn down, the trunks in Establish come
// up, and After is the logical topology live once the stage completes.
type Stage struct {
	Tear      [][2]int
	Establish [][2]int
	// After is the post-stage topology (what Appliers program).
	After *dcn.Topology
	// Seconds is the stage's wall time: the OCS switching time for its
	// circuit changes plus the drain/undrain overhead.
	Seconds float64
	// ResidualFraction is the fraction of the fabric's trunk capacity
	// still in service while the stage runs (torn trunks are already
	// drained, new trunks are not yet up).
	ResidualFraction float64
}

// Plan is the planner's decision for one epoch.
type Plan struct {
	// Reconfigure reports whether the loop should act; when false,
	// Reason says why the planner held (hysteresis, floor, no change).
	Reconfigure bool
	Reason      string
	Target      *dcn.Topology
	Stages      []Stage
	// PredictedGain is target/current achieved throughput - 1 on the
	// predicted demand.
	PredictedGain         float64
	CurrentBps, TargetBps float64
	// Seconds is the total reconfiguration time across stages.
	Seconds float64
	// DrainedCapacityBpsSeconds integrates capacity held out of service:
	// sum over stages of drained trunks x 2 x TrunkBps x stage seconds.
	DrainedCapacityBpsSeconds float64
	// MinResidualFraction is the lowest ResidualFraction across stages
	// (1 when the plan has no stages).
	MinResidualFraction float64
}

// Planner decides when and how to reconfigure. It is stateless apart from
// its configuration; hysteresis *cooldown* (min epochs between
// reconfigurations) lives in the Loop, which owns the epoch counter.
type Planner struct {
	cfg PlannerConfig
}

// NewPlanner validates the configuration and returns a planner.
func NewPlanner(cfg PlannerConfig) (*Planner, error) {
	if cfg.Blocks < 2 || cfg.Uplinks < cfg.Blocks-1 || cfg.TrunkBps <= 0 {
		return nil, fmt.Errorf("%w: blocks=%d uplinks=%d trunk=%g",
			ErrConfig, cfg.Blocks, cfg.Uplinks, cfg.TrunkBps)
	}
	return &Planner{cfg: cfg.withDefaults()}, nil
}

// Config returns the planner's effective (defaulted) configuration.
func (p *Planner) Config() PlannerConfig { return p.cfg }

// Decide engineers a candidate topology for the predicted demand and
// returns the staged plan, or a held plan when the gain does not clear
// the hysteresis threshold or the change cannot be staged above the
// capacity floor.
func (p *Planner) Decide(current *dcn.Topology, predicted [][]float64) (*Plan, error) {
	cfg := p.cfg
	plan := &Plan{MinResidualFraction: 1}
	target, err := dcn.Engineer(cfg.Blocks, cfg.Uplinks, predicted)
	if err != nil {
		return nil, err
	}
	plan.Target = target
	if sameLinks(current, target) {
		plan.Reason = "topology already optimal for predicted demand"
		return plan, nil
	}

	// The two fluid solves are independent; fan them out on the worker
	// pool (results collected by index, so the comparison is identical
	// at any worker count).
	tops := []*dcn.Topology{current, target}
	bps := par.Sweep("te_plan_eval", tops, func(_ int, t *dcn.Topology) float64 {
		return dcn.AchievedThroughput(t, predicted, cfg.TrunkBps)
	})
	plan.CurrentBps, plan.TargetBps = bps[0], bps[1]
	if plan.CurrentBps > 0 {
		plan.PredictedGain = plan.TargetBps/plan.CurrentBps - 1
	}
	if plan.PredictedGain < cfg.MinGain {
		plan.Reason = fmt.Sprintf("predicted gain %.3f below hysteresis threshold %.3f",
			plan.PredictedGain, cfg.MinGain)
		return plan, nil
	}

	stages, err := p.stagePlan(current, target)
	if err != nil {
		plan.Reason = err.Error()
		return plan, nil
	}
	plan.Stages = stages
	plan.Reconfigure = true
	plan.Reason = fmt.Sprintf("predicted gain %.3f over %d stages", plan.PredictedGain, len(stages))
	for _, st := range stages {
		plan.Seconds += st.Seconds
		plan.DrainedCapacityBpsSeconds += float64(len(st.Tear)) * 2 * cfg.TrunkBps * st.Seconds
		if st.ResidualFraction < plan.MinResidualFraction {
			plan.MinResidualFraction = st.ResidualFraction
		}
	}
	return plan, nil
}

// stagePlan splits the current->target diff into stages. Trunks present
// in both topologies are never touched (the §2.3 keep-undisturbed
// property of incremental programming); each stage tears the largest
// prefix of the remaining tears that keeps residual capacity at or above
// the floor and the intermediate topology two-hop routable for every
// pair, then establishes as many pending trunks as freed ports allow.
func (p *Planner) stagePlan(current, target *dcn.Topology) ([]Stage, error) {
	cfg := p.cfg
	n := cfg.Blocks
	var tears, adds [][2]int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := target.Links[i][j] - current.Links[i][j]
			for k := 0; k < d; k++ {
				adds = append(adds, [2]int{i, j})
			}
			for k := 0; k < -d; k++ {
				tears = append(tears, [2]int{i, j})
			}
		}
	}
	totalTrunks := trunkCount(current)
	if totalTrunks == 0 {
		return nil, fmt.Errorf("%w: current topology has no trunks", ErrConfig)
	}

	work := cloneTopology(current)
	var stages []Stage
	for len(tears) > 0 || len(adds) > 0 {
		var stage Stage
		// Tear phase: take tears while the floor and routability hold.
		for len(tears) > 0 {
			t0 := tears[0]
			work.Links[t0[0]][t0[1]]--
			work.Links[t0[1]][t0[0]]--
			frac := float64(trunkCount(work)) / float64(totalTrunks)
			if (frac < cfg.CapacityFloor || !allPairsRoutable(work)) && len(stage.Tear) > 0 {
				// This tear belongs to the next stage.
				work.Links[t0[0]][t0[1]]++
				work.Links[t0[1]][t0[0]]++
				break
			}
			if frac < cfg.CapacityFloor || !allPairsRoutable(work) {
				// Even a single-trunk stage violates the floor (or
				// disconnects a pair): the plan cannot be staged safely.
				work.Links[t0[0]][t0[1]]++
				work.Links[t0[1]][t0[0]]++
				return nil, fmt.Errorf("%w: single-trunk stage drops residual capacity to %.3f (floor %.3f)",
					ErrConfig, frac, cfg.CapacityFloor)
			}
			stage.Tear = append(stage.Tear, t0)
			tears = tears[1:]
		}
		stage.ResidualFraction = float64(trunkCount(work)) / float64(totalTrunks)
		// Establish phase: bring up every pending trunk the freed ports
		// admit. New circuits do not disturb live traffic, so they do
		// not count against the floor.
		rest := adds[:0]
		for _, a := range adds {
			if work.Degree(a[0]) < cfg.Uplinks && work.Degree(a[1]) < cfg.Uplinks {
				work.Links[a[0]][a[1]]++
				work.Links[a[1]][a[0]]++
				stage.Establish = append(stage.Establish, a)
			} else {
				rest = append(rest, a)
			}
		}
		adds = rest
		if len(stage.Tear) == 0 && len(stage.Establish) == 0 {
			// No progress is a planner bug (a valid target always
			// admits its adds once its tears are done).
			return nil, fmt.Errorf("%w: staging made no progress (%d tears, %d adds left)",
				ErrConfig, len(tears), len(adds))
		}
		changes := len(stage.Tear) + len(stage.Establish)
		stage.Seconds = cfg.Tech.PodReconfigTime(changes, cfg.Switches) + cfg.StageOverheadSeconds
		stage.After = cloneTopology(work)
		stages = append(stages, stage)
	}
	if !sameLinks(work, target) {
		return nil, fmt.Errorf("%w: staged topology does not converge to target", ErrConfig)
	}
	return stages, nil
}

// sameLinks reports whether two topologies carry identical trunk
// matrices.
func sameLinks(a, b *dcn.Topology) bool {
	if a.Blocks != b.Blocks {
		return false
	}
	for i := range a.Links {
		for j := range a.Links[i] {
			if a.Links[i][j] != b.Links[i][j] {
				return false
			}
		}
	}
	return true
}

// cloneTopology deep-copies a topology.
func cloneTopology(t *dcn.Topology) *dcn.Topology {
	out := &dcn.Topology{Blocks: t.Blocks, UplinksPerBlock: t.UplinksPerBlock}
	out.Links = make([][]int, t.Blocks)
	for i := range t.Links {
		out.Links[i] = append([]int(nil), t.Links[i]...)
	}
	return out
}

// trunkCount sums the undirected trunks of a topology.
func trunkCount(t *dcn.Topology) int {
	n := 0
	for i := range t.Links {
		for j := i + 1; j < len(t.Links[i]); j++ {
			n += t.Links[i][j]
		}
	}
	return n
}

// allPairsRoutable reports whether every block pair has a direct trunk or
// a two-hop transit path — the routability invariant the flow simulator
// and the fluid solver both rely on.
func allPairsRoutable(t *dcn.Topology) bool {
	n := t.Blocks
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if t.Links[i][j] > 0 {
				continue
			}
			ok := false
			for v := 0; v < n && !ok; v++ {
				if v != i && v != j && t.Links[i][v] > 0 && t.Links[v][j] > 0 {
					ok = true
				}
			}
			if !ok {
				return false
			}
		}
	}
	return true
}
