package te

import (
	"errors"
	"testing"

	"lightwave/internal/dcn"
)

func newTestPlanner(t *testing.T, cfg PlannerConfig) *Planner {
	t.Helper()
	if cfg.Blocks == 0 {
		cfg.Blocks = 8
	}
	if cfg.Uplinks == 0 {
		cfg.Uplinks = 14
	}
	if cfg.TrunkBps == 0 {
		cfg.TrunkBps = 50e9
	}
	p, err := NewPlanner(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// skewed returns a saturating demand matrix with a handful of hot pairs
// over a thin background — hot enough that the uniform mesh's 2× transit
// tax bites and topology engineering pays off.
func skewed(blocks int, hot ...[2]int) [][]float64 {
	d := dcn.UniformDemand(blocks, 1e9)
	for _, h := range hot {
		d[h[0]][h[1]] += 1000e9
		d[h[1]][h[0]] += 1000e9
	}
	return d
}

func TestPlannerHoldsWhenTopologyOptimal(t *testing.T) {
	p := newTestPlanner(t, PlannerConfig{})
	demand := skewed(8, [2]int{0, 1}, [2]int{2, 3})
	target, err := dcn.Engineer(8, 14, demand)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Decide(target, demand)
	if err != nil {
		t.Fatal(err)
	}
	if plan.Reconfigure {
		t.Fatalf("planner reconfigured an already-optimal topology: %+v", plan)
	}
	if plan.MinResidualFraction != 1 {
		t.Errorf("held plan MinResidualFraction = %g, want 1", plan.MinResidualFraction)
	}
}

func TestPlannerHysteresisHoldsSmallGain(t *testing.T) {
	// An absurd threshold holds every plan.
	p := newTestPlanner(t, PlannerConfig{MinGain: 100})
	mesh, err := dcn.UniformMesh(8, 14)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Decide(mesh, skewed(8, [2]int{0, 1}, [2]int{2, 3}, [2]int{4, 5}))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Reconfigure {
		t.Fatalf("gain %g cleared a threshold of 100", plan.PredictedGain)
	}
	if plan.Reason == "" {
		t.Error("held plan must carry a reason")
	}
}

func TestPlannerReconfiguresOnSkew(t *testing.T) {
	p := newTestPlanner(t, PlannerConfig{})
	mesh, err := dcn.UniformMesh(8, 14)
	if err != nil {
		t.Fatal(err)
	}
	demand := skewed(8, [2]int{0, 1}, [2]int{2, 3}, [2]int{4, 5})
	plan, err := p.Decide(mesh, demand)
	if err != nil {
		t.Fatal(err)
	}
	if !plan.Reconfigure {
		t.Fatalf("planner held on strong skew: %s (gain %g)", plan.Reason, plan.PredictedGain)
	}
	if plan.PredictedGain <= 0 {
		t.Errorf("gain = %g, want > 0", plan.PredictedGain)
	}
	if plan.TargetBps <= plan.CurrentBps {
		t.Errorf("target %g <= current %g", plan.TargetBps, plan.CurrentBps)
	}
	if plan.Seconds <= 0 || plan.DrainedCapacityBpsSeconds <= 0 {
		t.Errorf("plan costs not populated: %g s, %g bps-s", plan.Seconds, plan.DrainedCapacityBpsSeconds)
	}

	cfg := p.Config()
	if len(plan.Stages) == 0 {
		t.Fatal("reconfiguring plan has no stages")
	}
	work := cloneTopology(mesh)
	total := trunkCount(mesh)
	for si, st := range plan.Stages {
		for _, tr := range st.Tear {
			work.Links[tr[0]][tr[1]]--
			work.Links[tr[1]][tr[0]]--
		}
		frac := float64(trunkCount(work)) / float64(total)
		if frac < cfg.CapacityFloor-1e-9 {
			t.Fatalf("stage %d residual %g below floor %g", si, frac, cfg.CapacityFloor)
		}
		if st.ResidualFraction < cfg.CapacityFloor-1e-9 {
			t.Fatalf("stage %d reports residual %g below floor %g", si, st.ResidualFraction, cfg.CapacityFloor)
		}
		if !allPairsRoutable(work) {
			t.Fatalf("stage %d drained topology loses two-hop routability", si)
		}
		for _, ad := range st.Establish {
			work.Links[ad[0]][ad[1]]++
			work.Links[ad[1]][ad[0]]++
		}
		if !sameLinks(work, st.After) {
			t.Fatalf("stage %d After does not match the replayed tear/establish sets", si)
		}
		if err := st.After.Validate(); err != nil {
			t.Fatalf("stage %d After invalid: %v", si, err)
		}
		if st.Seconds <= 0 {
			t.Fatalf("stage %d has non-positive duration", si)
		}
	}
	if !sameLinks(work, plan.Target) {
		t.Fatal("stages do not converge to the target topology")
	}
	if plan.MinResidualFraction < cfg.CapacityFloor-1e-9 {
		t.Errorf("MinResidualFraction %g below floor %g", plan.MinResidualFraction, cfg.CapacityFloor)
	}
}

func TestPlannerImpossibleFloorHolds(t *testing.T) {
	// With a floor this tight, any multi-trunk shift between two very
	// different topologies must be rejected, not violated.
	p := newTestPlanner(t, PlannerConfig{CapacityFloor: 0.999})
	mesh, err := dcn.UniformMesh(8, 14)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := p.Decide(mesh, skewed(8, [2]int{0, 1}, [2]int{2, 3}, [2]int{4, 5}))
	if err != nil {
		t.Fatal(err)
	}
	if plan.Reconfigure {
		t.Fatalf("plan staged %d trunk moves under a 0.999 floor", len(plan.Stages))
	}
}

func TestPlannerConfigErrors(t *testing.T) {
	if _, err := NewPlanner(PlannerConfig{Blocks: 1, Uplinks: 4, TrunkBps: 1}); !errors.Is(err, ErrConfig) {
		t.Errorf("1 block: err = %v, want ErrConfig", err)
	}
	if _, err := NewPlanner(PlannerConfig{Blocks: 8, Uplinks: 3, TrunkBps: 1}); !errors.Is(err, ErrConfig) {
		t.Errorf("too few uplinks: err = %v, want ErrConfig", err)
	}
	if _, err := NewPlanner(PlannerConfig{Blocks: 8, Uplinks: 14}); !errors.Is(err, ErrConfig) {
		t.Errorf("zero trunk rate: err = %v, want ErrConfig", err)
	}
}
