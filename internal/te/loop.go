package te

import (
	"fmt"
	"sync"

	"lightwave/internal/dcn"
)

// Applier realizes an accepted plan on hardware, stage by stage.
// Implementations must apply stages in order; the logical topology after
// a successful Apply is plan.Target.
type Applier interface {
	Apply(plan *Plan) error
}

// FabricApplier programs each stage's topology directly onto a simulated
// DCN OCS fabric. dcn.Fabric.Program is incremental, so the hardware
// churn of each call matches the stage's tear/establish set and trunks
// shared between stages stay undisturbed.
type FabricApplier struct {
	F *dcn.Fabric
}

// Apply implements Applier.
func (a *FabricApplier) Apply(plan *Plan) error {
	for si, st := range plan.Stages {
		if _, err := a.F.Program(st.After); err != nil {
			return fmt.Errorf("te: stage %d: %w", si, err)
		}
	}
	return nil
}

// Config parameterizes a Loop.
type Config struct {
	Blocks, Uplinks int
	// TrunkBps is the per-trunk, per-direction rate.
	TrunkBps float64
	// EpochSeconds is the collection epoch length.
	EpochSeconds float64
	Predictor    PredictorConfig
	// Planner tunes hysteresis, capacity floor, and reconfiguration
	// costing; its Blocks/Uplinks/TrunkBps are filled from this Config.
	Planner PlannerConfig
	// CooldownEpochs is the minimum number of epochs between
	// reconfigurations (default 3) — the temporal half of hysteresis.
	CooldownEpochs int
	// Applier realizes accepted plans; nil keeps the loop purely
	// logical (the evaluation harness's mode).
	Applier Applier
}

// Status is a point-in-time snapshot of a loop.
type Status struct {
	Blocks, Uplinks           int
	Epoch                     int
	Reconfigs                 int
	SkippedReconfigs          int
	Stages                    int
	TrunksMoved               int
	LastGain                  float64
	LastPredictionError       float64
	MinResidualFraction       float64
	DrainedCapacityBpsSeconds float64
	LastReconfigEpoch         int
	LastReason                string
	CurrentTrunks             int
}

// Loop is the online traffic-engineering state machine: feed it observed
// traffic (Observe/ObserveRates), advance it one epoch at a time with
// Step, and it maintains the live logical topology, reconfiguring through
// the Applier when the planner's hysteresis clears. All methods are safe
// for concurrent use.
type Loop struct {
	mu      sync.Mutex
	cfg     Config
	col     *Collector
	pred    *Predictor
	planner *Planner
	current *dcn.Topology

	epoch             int
	reconfigs         int
	skipped           int
	stages            int
	trunksMoved       int
	lastGain          float64
	lastPredErr       float64
	minResidual       float64
	drainedBpsSeconds float64
	lastReconfigEpoch int
	lastReason        string
}

// NewLoop builds a loop whose initial topology is the demand-oblivious
// uniform mesh (the state a freshly cabled fabric boots into).
func NewLoop(cfg Config) (*Loop, error) {
	if cfg.EpochSeconds <= 0 {
		return nil, fmt.Errorf("%w: epoch %g s", ErrConfig, cfg.EpochSeconds)
	}
	if cfg.CooldownEpochs <= 0 {
		cfg.CooldownEpochs = 3
	}
	col, err := NewCollector(cfg.Blocks, cfg.EpochSeconds)
	if err != nil {
		return nil, err
	}
	pred, err := NewPredictor(cfg.Blocks, cfg.Predictor)
	if err != nil {
		return nil, err
	}
	pcfg := cfg.Planner
	pcfg.Blocks, pcfg.Uplinks, pcfg.TrunkBps = cfg.Blocks, cfg.Uplinks, cfg.TrunkBps
	planner, err := NewPlanner(pcfg)
	if err != nil {
		return nil, err
	}
	mesh, err := dcn.UniformMesh(cfg.Blocks, cfg.Uplinks)
	if err != nil {
		return nil, err
	}
	return &Loop{
		cfg:               cfg,
		col:               col,
		pred:              pred,
		planner:           planner,
		current:           mesh,
		minResidual:       1,
		lastPredErr:       -1,
		lastReconfigEpoch: -1,
	}, nil
}

// Observe adds nbytes to the (src, dst) pair's count for the current
// epoch.
func (l *Loop) Observe(src, dst int, nbytes float64) {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.col.Observe(src, dst, nbytes)
}

// ObserveRates integrates a full offered-rate matrix over the epoch.
func (l *Loop) ObserveRates(bps [][]float64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.col.ObserveRates(bps)
}

// Step closes the current collection epoch and advances the loop:
// roll the collector, update the predictor, ask the planner for a plan,
// and — when the plan reconfigures and the cooldown has passed — apply it
// and adopt the target topology. It returns the plan that governed the
// epoch (never nil on success).
func (l *Loop) Step() (*Plan, error) {
	l.mu.Lock()
	defer l.mu.Unlock()

	observed := l.col.Roll()
	stats, err := l.pred.Update(observed)
	if err != nil {
		return nil, err
	}
	l.lastPredErr = stats.Error
	predicted := l.pred.Predict()

	reg := Registry()
	var plan *Plan
	if l.lastReconfigEpoch >= 0 && l.epoch-l.lastReconfigEpoch < l.cfg.CooldownEpochs {
		plan = &Plan{
			Reason: fmt.Sprintf("cooldown: %d of %d epochs since reconfiguration",
				l.epoch-l.lastReconfigEpoch, l.cfg.CooldownEpochs),
			MinResidualFraction: 1,
		}
	} else {
		plan, err = l.planner.Decide(l.current, predicted)
		if err != nil {
			return nil, err
		}
	}
	l.lastGain = plan.PredictedGain
	l.lastReason = plan.Reason

	if plan.Reconfigure {
		if l.cfg.Applier != nil {
			if err := l.cfg.Applier.Apply(plan); err != nil {
				return nil, fmt.Errorf("te: applying plan at epoch %d: %w", l.epoch, err)
			}
		}
		l.current = plan.Target
		l.reconfigs++
		l.stages += len(plan.Stages)
		for _, st := range plan.Stages {
			l.trunksMoved += len(st.Tear) + len(st.Establish)
		}
		l.drainedBpsSeconds += plan.DrainedCapacityBpsSeconds
		if plan.MinResidualFraction < l.minResidual {
			l.minResidual = plan.MinResidualFraction
		}
		l.lastReconfigEpoch = l.epoch
		reg.Counter("te_reconfigs_total").Inc()
		reg.Counter("te_stages_total").Add(int64(len(plan.Stages)))
		reg.Counter("te_trunks_moved_total").Add(int64(l.trunkDelta(plan)))
		reg.Gauge("te_drained_capacity_bps_seconds").Set(l.drainedBpsSeconds)
		reg.Gauge("te_min_residual_capacity_fraction").Set(l.minResidual)
	} else {
		l.skipped++
		reg.Counter("te_reconfig_skipped_total").Inc()
	}
	l.epoch++
	reg.Counter("te_epochs_total").Inc()
	reg.Gauge("te_predicted_gain").Set(plan.PredictedGain)
	return plan, nil
}

func (l *Loop) trunkDelta(plan *Plan) int {
	n := 0
	for _, st := range plan.Stages {
		n += len(st.Tear) + len(st.Establish)
	}
	return n
}

// Current returns a copy of the live logical topology.
func (l *Loop) Current() *dcn.Topology {
	l.mu.Lock()
	defer l.mu.Unlock()
	return cloneTopology(l.current)
}

// Status snapshots the loop.
func (l *Loop) Status() Status {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Status{
		Blocks:                    l.cfg.Blocks,
		Uplinks:                   l.cfg.Uplinks,
		Epoch:                     l.epoch,
		Reconfigs:                 l.reconfigs,
		SkippedReconfigs:          l.skipped,
		Stages:                    l.stages,
		TrunksMoved:               l.trunksMoved,
		LastGain:                  l.lastGain,
		LastPredictionError:       l.lastPredErr,
		MinResidualFraction:       l.minResidual,
		DrainedCapacityBpsSeconds: l.drainedBpsSeconds,
		LastReconfigEpoch:         l.lastReconfigEpoch,
		LastReason:                l.lastReason,
		CurrentTrunks:             trunkCount(l.current),
	}
}
