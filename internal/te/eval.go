package te

import (
	"fmt"

	"lightwave/internal/dcn"
	"lightwave/internal/par"
	"lightwave/internal/sim"
)

// EvalConfig parameterizes the replay experiment comparing three
// topology policies on one load trace:
//
//   - static: the uniform mesh, never reconfigured (demand-oblivious);
//   - oracle: each epoch's topology engineered on that epoch's *true*
//     demand — the unreachable upper bound (perfect prediction, free
//     reconfiguration);
//   - online: the TE loop's trajectory — each epoch runs on the topology
//     the loop had engineered from *past* observations, and epochs after
//     a reconfiguration pay its drained-capacity bill.
type EvalConfig struct {
	Trace   TraceConfig
	Uplinks int
	// TrunkBps is the per-trunk, per-direction rate (default 50e9, the
	// 400G reference).
	TrunkBps float64
	// LoadFraction scales the trace so its *peak* epoch offers this
	// fraction of fabric capacity (default 0.7). The same scale applies
	// to all three scenarios.
	LoadFraction float64
	// EpochSeconds is the loop's collection epoch (default 60).
	EpochSeconds float64
	// SimSeconds is the flow-simulated horizon per epoch (default 2;
	// throughput is a rate, so the horizon need not match the epoch).
	SimSeconds float64
	// MeanFlowBytes is the flow-size mean (default 1e9).
	MeanFlowBytes float64
	Predictor     PredictorConfig
	Planner       PlannerConfig
	// CooldownEpochs is the loop's reconfiguration cooldown (default 3).
	CooldownEpochs int
	MaxTransit     int
	// Seed drives the flow arrival processes. Each epoch's three
	// scenario sims share one substream, so arrival patterns are
	// identical across scenarios and only the topology differs.
	Seed uint64
}

func (c EvalConfig) withDefaults() EvalConfig {
	if c.TrunkBps <= 0 {
		c.TrunkBps = 50e9
	}
	if c.LoadFraction <= 0 {
		c.LoadFraction = 0.7
	}
	if c.EpochSeconds <= 0 {
		c.EpochSeconds = 60
	}
	if c.SimSeconds <= 0 {
		c.SimSeconds = 2
	}
	if c.MeanFlowBytes <= 0 {
		c.MeanFlowBytes = 1e9
	}
	if c.MaxTransit <= 0 {
		c.MaxTransit = 4
	}
	return c
}

// ScenarioResult aggregates one policy's replay.
type ScenarioResult struct {
	Name string
	// MeanBps is the mean delivered throughput across epochs.
	MeanBps float64
	// EffectiveBps subtracts the reconfiguration drain bill (equals
	// MeanBps for static and oracle, which reconfigure for free).
	EffectiveBps float64
	// MeanFCT is the mean flow completion time across epochs, seconds.
	MeanFCT float64
	// PerEpochBps is the delivered throughput of each epoch.
	PerEpochBps []float64
}

// EvalResult is the full experiment outcome.
type EvalResult struct {
	Static, Oracle, Online ScenarioResult
	// OnlineGain and OracleGain are effective-throughput gains over the
	// static mesh (target/static − 1).
	OnlineGain, OracleGain float64
	// Loop is the final state of the online loop.
	Loop Status
	// MinResidualFraction is the lowest in-service capacity fraction any
	// reconfiguration stage reached (1 if the loop never reconfigured) —
	// the experiment's witness that the capacity floor held.
	MinResidualFraction float64
}

// Evaluate replays the trace. Phase A walks the online loop sequentially
// (each Step consumes the epoch it just observed, so the trajectory is
// inherently ordered); phase B fans all 3×Epochs flow simulations out on
// the worker pool, results keyed by index — the whole experiment is
// bit-identical at any worker count.
func Evaluate(cfg EvalConfig) (*EvalResult, error) {
	cfg = cfg.withDefaults()
	trace, err := cfg.Trace.Generate()
	if err != nil {
		return nil, err
	}
	n, epochs := cfg.Trace.Blocks, cfg.Trace.Epochs
	if cfg.Uplinks < n-1 {
		return nil, fmt.Errorf("%w: %d uplinks for %d blocks", ErrConfig, cfg.Uplinks, n)
	}

	// Normalize the trace so its peak epoch offers LoadFraction of the
	// fabric's total directed capacity.
	peak := 0.0
	for _, m := range trace {
		if t := dcn.TotalDemand(m); t > peak {
			peak = t
		}
	}
	if peak <= 0 {
		return nil, fmt.Errorf("%w: trace offers no demand", ErrConfig)
	}
	scale := cfg.LoadFraction * float64(n*cfg.Uplinks) * cfg.TrunkBps / peak
	for _, m := range trace {
		for i := range m {
			for j := range m[i] {
				m[i][j] *= scale
			}
		}
	}

	// Phase A: walk the online loop. onlineTop[e] is the topology live
	// while epoch e's traffic flows (decided from epochs < e); the plan
	// produced by consuming epoch e reconfigures the fabric at the e/e+1
	// boundary, so its drain bill lands on epoch e+1.
	loop, err := NewLoop(Config{
		Blocks: n, Uplinks: cfg.Uplinks, TrunkBps: cfg.TrunkBps,
		EpochSeconds: cfg.EpochSeconds,
		Predictor:    cfg.Predictor, Planner: cfg.Planner,
		CooldownEpochs: cfg.CooldownEpochs,
	})
	if err != nil {
		return nil, err
	}
	static, err := dcn.UniformMesh(n, cfg.Uplinks)
	if err != nil {
		return nil, err
	}
	onlineTop := make([]*dcn.Topology, epochs)
	drainBps := make([]float64, epochs) // throughput debit per epoch
	minResidual := 1.0
	for e := 0; e < epochs; e++ {
		onlineTop[e] = loop.Current()
		if err := loop.ObserveRates(trace[e]); err != nil {
			return nil, err
		}
		plan, err := loop.Step()
		if err != nil {
			return nil, err
		}
		if plan.Reconfigure {
			if e+1 < epochs {
				drainBps[e+1] += plan.DrainedCapacityBpsSeconds / cfg.EpochSeconds
			}
			if plan.MinResidualFraction < minResidual {
				minResidual = plan.MinResidualFraction
			}
		}
	}

	// Oracle topologies are independent per epoch; engineer them on the
	// pool.
	type topOut struct {
		t   *dcn.Topology
		err error
	}
	oracle := par.Sweep("te_eval_oracle", trace, func(_ int, m [][]float64) topOut {
		t, err := dcn.Engineer(n, cfg.Uplinks, m)
		return topOut{t, err}
	})
	for _, o := range oracle {
		if o.err != nil {
			return nil, o.err
		}
	}

	// Phase B: 3 scenarios × epochs flow simulations. Job i simulates
	// scenario i/epochs on epoch i%epochs; all three scenarios of an
	// epoch share one arrival substream so only the topology differs.
	type simOut struct {
		res dcn.SimResult
		err error
	}
	jobs := make([]int, 3*epochs)
	for i := range jobs {
		jobs[i] = i
	}
	outs := par.Sweep("te_eval_sim", jobs, func(_ int, i int) simOut {
		s, e := i/epochs, i%epochs
		var top *dcn.Topology
		switch s {
		case 0:
			top = static
		case 1:
			top = oracle[e].t
		default:
			top = onlineTop[e]
		}
		w := dcn.Workload{Demand: trace[e], MeanFlowBytes: cfg.MeanFlowBytes, Duration: cfg.SimSeconds}
		sc := dcn.SimConfig{TrunkBps: cfg.TrunkBps, Seed: sim.SubstreamSeed(cfg.Seed, uint64(e)), MaxTransit: cfg.MaxTransit}
		r, err := dcn.Simulate(top, w, sc)
		return simOut{r, err}
	})

	res := &EvalResult{MinResidualFraction: minResidual, Loop: loop.Status()}
	names := [3]string{"static", "oracle", "online"}
	scn := [3]*ScenarioResult{&res.Static, &res.Oracle, &res.Online}
	for s := 0; s < 3; s++ {
		sr := scn[s]
		sr.Name = names[s]
		sr.PerEpochBps = make([]float64, epochs)
		var fct float64
		for e := 0; e < epochs; e++ {
			o := outs[s*epochs+e]
			if o.err != nil {
				return nil, fmt.Errorf("te: %s epoch %d: %w", sr.Name, e, o.err)
			}
			sr.PerEpochBps[e] = o.res.ThroughputBps
			sr.MeanBps += o.res.ThroughputBps
			fct += o.res.MeanFCT
			eff := o.res.ThroughputBps
			if s == 2 {
				eff -= drainBps[e]
				if eff < 0 {
					eff = 0
				}
			}
			sr.EffectiveBps += eff
		}
		sr.MeanBps /= float64(epochs)
		sr.EffectiveBps /= float64(epochs)
		sr.MeanFCT = fct / float64(epochs)
	}
	if res.Static.EffectiveBps > 0 {
		res.OnlineGain = res.Online.EffectiveBps/res.Static.EffectiveBps - 1
		res.OracleGain = res.Oracle.EffectiveBps/res.Static.EffectiveBps - 1
	}
	return res, nil
}
