package te

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"lightwave/internal/dcn"
	"lightwave/internal/fleet"
	"lightwave/internal/topo"
)

// FleetApplier applies plans through the fleet control plane: the DCN
// fabric is registered as a first-class pod on the Manager, and every
// stage brackets its OCS reprogramming with DrainOCS/UndrainOCS on the
// switches whose circuits the stage tears — so maintenance visibility,
// events, and slice-placement deferral all ride the same reconcile path
// as the rest of the fleet (§3.2.2's "deep integration of control and
// monitoring").
type FleetApplier struct {
	m   *fleet.Manager
	pod string
	b   *dcnBackend
}

// NewFleetApplier registers the fabric with the manager under podName
// (reusing the pod if it already exists) and returns the applier.
func NewFleetApplier(m *fleet.Manager, podName string, f *dcn.Fabric) (*FleetApplier, error) {
	b := &dcnBackend{f: f}
	if err := m.AddPod(podName, b); err != nil && !errors.Is(err, fleet.ErrPodExists) {
		return nil, err
	}
	return &FleetApplier{m: m, pod: podName, b: b}, nil
}

// Apply implements Applier: for each stage, drain the OCSes the stage
// reprograms, program the stage's topology, then undrain.
func (a *FleetApplier) Apply(plan *Plan) error {
	for si, st := range plan.Stages {
		ids := a.b.switchesTouching(st.Tear)
		for _, id := range ids {
			if err := a.m.DrainOCS(a.pod, id); err != nil {
				return fmt.Errorf("te: stage %d drain ocs %d: %w", si, id, err)
			}
		}
		err := a.b.program(st.After)
		for _, id := range ids {
			if uerr := a.m.UndrainOCS(a.pod, id); uerr != nil && err == nil {
				err = fmt.Errorf("te: stage %d undrain ocs %d: %w", si, id, uerr)
			}
		}
		if err != nil {
			return fmt.Errorf("te: stage %d: %w", si, err)
		}
	}
	return nil
}

// dcnBackend adapts a dcn.Fabric to the fleet.Backend interface. The DCN
// pod carries inter-block trunks, not compute slices, so Ensure is
// rejected and Info reports circuit inventory only. A mutex serializes
// the fabric between the applier's programming and the manager's status
// snapshots.
type dcnBackend struct {
	mu sync.Mutex
	f  *dcn.Fabric
}

func (b *dcnBackend) program(t *dcn.Topology) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	_, err := b.f.Program(t)
	return err
}

// switchesTouching returns the sorted IDs of switches hosting a circuit
// of any torn pair — the set a stage must drain. IDs beyond the fleet's
// drainable OCS range are skipped (they are still reprogrammed, just not
// tracked as drained).
func (b *dcnBackend) switchesTouching(tears [][2]int) []int {
	if len(tears) == 0 {
		return nil
	}
	torn := make(map[[2]int]bool, len(tears))
	for _, t := range tears {
		torn[t] = true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	var ids []int
	for i, sw := range b.f.Switches {
		if i >= topo.NumOCS {
			break
		}
		for _, c := range sw.Circuits() {
			x, y := int(c.North), int(c.South)
			if x > y {
				x, y = y, x
			}
			if torn[[2]int{x, y}] {
				ids = append(ids, i)
				break
			}
		}
	}
	sort.Ints(ids)
	return ids
}

// Ensure implements fleet.Backend. The DCN pod hosts no compute slices.
func (b *dcnBackend) Ensure(name string, _ topo.Shape, _ []int) (bool, error) {
	return false, fmt.Errorf("%w: DCN fabric pod cannot host slice %q", fleet.ErrBadIntent, name)
}

// Destroy implements fleet.Backend; there is nothing to destroy.
func (b *dcnBackend) Destroy(string) error { return nil }

// Slices implements fleet.Backend.
func (b *dcnBackend) Slices() []string { return nil }

// Info implements fleet.Backend.
func (b *dcnBackend) Info() fleet.PodInfo {
	b.mu.Lock()
	defer b.mu.Unlock()
	n := 0
	for _, sw := range b.f.Switches {
		n += len(sw.Circuits())
	}
	return fleet.PodInfo{Circuits: n}
}
