package te

import (
	"fmt"
	"math"
)

// Collector accumulates inter-block byte counts for the current epoch and
// rolls them into a bytes/s traffic matrix on demand — the streaming
// measurement half of the loop. It is not safe for concurrent use; the
// Loop serializes access under its own lock (matching how a block's
// switch stack reports counters to one collection point).
type Collector struct {
	blocks       int
	epochSeconds float64
	bytes        []float64 // flat src*blocks+dst accumulator
	totalBytes   float64   // lifetime total, for telemetry
	epochs       int
}

// NewCollector returns a collector for the given block count and epoch
// length.
func NewCollector(blocks int, epochSeconds float64) (*Collector, error) {
	if blocks < 2 {
		return nil, fmt.Errorf("%w: %d blocks", ErrConfig, blocks)
	}
	if epochSeconds <= 0 || math.IsNaN(epochSeconds) || math.IsInf(epochSeconds, 0) {
		return nil, fmt.Errorf("%w: epoch %g s", ErrConfig, epochSeconds)
	}
	return &Collector{
		blocks:       blocks,
		epochSeconds: epochSeconds,
		bytes:        make([]float64, blocks*blocks),
	}, nil
}

// Blocks returns the collector's block count.
func (c *Collector) Blocks() int { return c.blocks }

// Observe adds nbytes to the (src, dst) pair's count for the current
// epoch. Out-of-range pairs and non-positive counts are ignored — a
// malformed flow record must not wedge the collection pipeline.
func (c *Collector) Observe(src, dst int, nbytes float64) {
	if src < 0 || src >= c.blocks || dst < 0 || dst >= c.blocks || src == dst {
		return
	}
	if !(nbytes > 0) || math.IsInf(nbytes, 0) {
		return
	}
	c.bytes[src*c.blocks+dst] += nbytes
	c.totalBytes += nbytes
}

// ObserveRates integrates a full offered-rate matrix (bytes/s) over the
// epoch — the ingestion path the synthetic trace generators feed.
func (c *Collector) ObserveRates(bps [][]float64) error {
	if len(bps) != c.blocks {
		return fmt.Errorf("%w: %d rows for %d blocks", ErrMatrix, len(bps), c.blocks)
	}
	for i := range bps {
		if len(bps[i]) != c.blocks {
			return fmt.Errorf("%w: row %d has %d entries", ErrMatrix, i, len(bps[i]))
		}
		for j, v := range bps[i] {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("%w: rate[%d][%d] = %g", ErrMatrix, i, j, v)
			}
			c.Observe(i, j, v*c.epochSeconds)
		}
	}
	return nil
}

// Roll closes the current epoch: it returns the epoch's mean offered rate
// matrix (bytes/s) and resets the counters for the next epoch.
func (c *Collector) Roll() [][]float64 {
	out := make([][]float64, c.blocks)
	for i := range out {
		out[i] = make([]float64, c.blocks)
		for j := range out[i] {
			out[i][j] = c.bytes[i*c.blocks+j] / c.epochSeconds
			c.bytes[i*c.blocks+j] = 0
		}
	}
	c.epochs++
	reg := Registry()
	reg.Counter("te_collector_epochs_total").Inc()
	reg.Gauge("te_collector_bytes_total").Set(c.totalBytes)
	return out
}
