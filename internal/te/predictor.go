package te

import (
	"fmt"

	"lightwave/internal/telemetry"
)

// zeroVarBurstFactor is the relative spike guard used when a pair's
// EWMA variance is exactly zero and the detector's sigma test cannot
// fire: a sample above this multiple of the baseline counts as a burst.
const zeroVarBurstFactor = 2

// PredictorConfig parameterizes the demand predictor.
type PredictorConfig struct {
	// Alpha is the EWMA weight for new samples (default 0.3). Higher
	// tracks shifts faster; lower smooths noise harder.
	Alpha float64
	// PeakDecay multiplies the held per-pair peak each epoch (default
	// 0.85), so a burst keeps the prediction hedged for a few epochs
	// after it subsides instead of forever.
	PeakDecay float64
	// BurstSigma is the stddev multiplier above the EWMA baseline that
	// flags a sample as a burst (default 4, the telemetry.Detector
	// default).
	BurstSigma float64
	// Warmup is the number of epochs before adaptive burst detection
	// fires (default 8).
	Warmup int
}

func (c PredictorConfig) withDefaults() PredictorConfig {
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.3
	}
	if c.PeakDecay <= 0 || c.PeakDecay >= 1 {
		c.PeakDecay = 0.85
	}
	if c.BurstSigma <= 0 {
		c.BurstSigma = 4
	}
	if c.Warmup <= 0 {
		c.Warmup = 8
	}
	return c
}

// Predictor turns the collector's per-epoch matrices into the demand
// matrix handed to the topology engineer. Each directed pair carries a
// telemetry.Detector (the EWMA+variance machinery used for BER and
// insertion-loss monitoring): its baseline is the smoothed demand, and a
// sample the detector flags as a burst updates only the peak-hold — so a
// transient burst hedges the prediction upward without teaching the
// baseline that bursts are normal, exactly the detector's fault-handling
// contract. The prediction is max(EWMA baseline, decayed peak).
type Predictor struct {
	blocks int
	cfg    PredictorConfig
	det    []*telemetry.Detector
	peak   []float64
	last   []float64 // previous Predict output, for error tracking
	primed bool      // last is valid
	epochs int
}

// NewPredictor returns a predictor over blocks^2 directed pairs.
func NewPredictor(blocks int, cfg PredictorConfig) (*Predictor, error) {
	if blocks < 2 {
		return nil, fmt.Errorf("%w: %d blocks", ErrConfig, blocks)
	}
	cfg = cfg.withDefaults()
	p := &Predictor{
		blocks: blocks,
		cfg:    cfg,
		det:    make([]*telemetry.Detector, blocks*blocks),
		peak:   make([]float64, blocks*blocks),
		last:   make([]float64, blocks*blocks),
	}
	for i := range p.det {
		d := telemetry.NewDetector(fmt.Sprintf("te/pair%d-%d", i/blocks, i%blocks), nil)
		d.Alpha = cfg.Alpha
		d.Threshold = cfg.BurstSigma
		d.Warmup = cfg.Warmup
		p.det[i] = d
	}
	return p, nil
}

// UpdateStats reports one Update call's outcome.
type UpdateStats struct {
	// Bursts is the number of directed pairs whose sample was flagged
	// anomalous this epoch.
	Bursts int
	// Error is the aggregate relative prediction error of the *previous*
	// prediction against this epoch's observation:
	// sum|pred-obs| / sum obs. Negative until two epochs have been fed.
	Error float64
}

// Update feeds one epoch's observed rate matrix (bytes/s).
func (p *Predictor) Update(observed [][]float64) (UpdateStats, error) {
	n := p.blocks
	st := UpdateStats{Error: -1}
	if len(observed) != n {
		return st, fmt.Errorf("%w: %d rows for %d blocks", ErrMatrix, len(observed), n)
	}
	var absErr, obsSum float64
	for i := 0; i < n; i++ {
		if len(observed[i]) != n {
			return st, fmt.Errorf("%w: row %d has %d entries", ErrMatrix, i, len(observed[i]))
		}
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := observed[i][j]
			k := i*n + j
			if p.primed {
				d := p.last[k] - v
				if d < 0 {
					d = -d
				}
				absErr += d
				obsSum += v
			}
			// The detector's sigma test is blind when the baseline
			// variance is exactly zero (a perfectly steady pair), so a
			// relative guard classifies those spikes; bursts it catches
			// skip Observe, keeping the baseline unpoisoned exactly as
			// the detector itself would.
			mean, sd := p.det[k].Baseline()
			if p.epochs >= p.cfg.Warmup && sd == 0 && mean > 0 && v > mean*zeroVarBurstFactor {
				st.Bursts++
			} else if p.det[k].Observe(v) {
				st.Bursts++
			}
			p.peak[k] *= p.cfg.PeakDecay
			if v > p.peak[k] {
				p.peak[k] = v
			}
		}
	}
	p.epochs++
	reg := Registry()
	if p.primed && obsSum > 0 {
		st.Error = absErr / obsSum
		reg.Distribution("te_prediction_error", 0.01, 0.05, 0.1, 0.25, 0.5, 1, 2).Observe(st.Error)
	}
	if st.Bursts > 0 {
		reg.Counter("te_bursts_total").Add(int64(st.Bursts))
	}
	return st, nil
}

// Predict returns the demand matrix for the topology engineer:
// per-pair max(EWMA baseline, decayed peak).
func (p *Predictor) Predict() [][]float64 {
	n := p.blocks
	out := make([][]float64, n)
	for i := range out {
		out[i] = make([]float64, n)
		for j := range out[i] {
			if i == j {
				continue
			}
			k := i*n + j
			mean, _ := p.det[k].Baseline()
			v := mean
			if p.peak[k] > v {
				v = p.peak[k]
			}
			if v < 0 {
				v = 0
			}
			out[i][j] = v
			p.last[k] = v
		}
	}
	p.primed = true
	return out
}
