package te

import (
	"fmt"
	"math"

	"lightwave/internal/dcn"
	"lightwave/internal/par"
	"lightwave/internal/sim"
)

// TraceConfig describes a synthetic inter-block load trace: a thin uniform
// background, long-lived services that turn up and down across the horizon
// (dcn.RandomServices-style churn), a diurnal swing, and short random
// bursts. Every epoch is a pure function of (Seed, epoch), drawn through
// sim.Substream, so traces are bit-identical at any worker count and can
// be generated epoch-by-epoch by a live daemon or in bulk by the
// evaluation harness.
type TraceConfig struct {
	Blocks, Epochs int
	// BaseBps is the always-on background demand between every pair.
	BaseBps float64
	// Services pins the churn workload; when nil, NumServices services
	// with mean rate ServiceMeanBps are generated from the seed.
	Services       []dcn.Service
	NumServices    int
	ServiceMeanBps float64
	// ServiceMinEpochs stretches each *generated* service to at least
	// this many epochs (clamped to the horizon) — the long-lived ML
	// training and storage services whose persistence is what makes
	// demand predictable at topology-engineering timescales (§2.1).
	ServiceMinEpochs int
	// DiurnalAmplitude in [0, 1) swings the whole matrix sinusoidally
	// with period DiurnalPeriodEpochs (default 24).
	DiurnalAmplitude    float64
	DiurnalPeriodEpochs int
	// BurstProb is the per-epoch probability of a hot-pair burst adding
	// BurstFactor x ServiceMeanBps to one random pair (default factor 4).
	BurstProb   float64
	BurstFactor float64
	Seed        uint64
}

func (c TraceConfig) withDefaults() TraceConfig {
	if c.DiurnalPeriodEpochs <= 0 {
		c.DiurnalPeriodEpochs = 24
	}
	if c.BurstFactor <= 0 {
		c.BurstFactor = 4
	}
	return c
}

func (c TraceConfig) validate() error {
	if c.Blocks < 2 || c.Epochs < 1 {
		return fmt.Errorf("%w: trace needs >=2 blocks and >=1 epochs, got %d/%d",
			ErrConfig, c.Blocks, c.Epochs)
	}
	if c.BaseBps <= 0 {
		return fmt.Errorf("%w: base rate %g B/s", ErrConfig, c.BaseBps)
	}
	if c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1 {
		return fmt.Errorf("%w: diurnal amplitude %g outside [0,1)", ErrConfig, c.DiurnalAmplitude)
	}
	if c.BurstProb < 0 || c.BurstProb > 1 {
		return fmt.Errorf("%w: burst probability %g", ErrConfig, c.BurstProb)
	}
	return nil
}

// services returns the trace's service set: the pinned one, or a
// generated set on substream 0 of the seed, with lifetimes stretched to
// ServiceMinEpochs.
func (c TraceConfig) services() []dcn.Service {
	if c.Services != nil {
		return c.Services
	}
	svcs := dcn.RandomServices(c.NumServices, c.Blocks, c.Epochs, c.ServiceMeanBps,
		sim.SubstreamSeed(c.Seed, 0))
	for i := range svcs {
		s := &svcs[i]
		if s.End-s.Start < c.ServiceMinEpochs {
			s.End = s.Start + c.ServiceMinEpochs
			if s.End > c.Epochs {
				s.End = c.Epochs
				if s.Start > s.End-c.ServiceMinEpochs {
					s.Start = s.End - c.ServiceMinEpochs
				}
				if s.Start < 0 {
					s.Start = 0
				}
			}
		}
	}
	return svcs
}

// epochMatrix builds epoch e's offered-rate matrix. Bursts draw from
// substream e+1 of the seed, so epochs are independent and the matrix for
// a given (config, epoch) never depends on generation order.
func (c TraceConfig) epochMatrix(e int, svcs []dcn.Service) [][]float64 {
	d := dcn.UniformDemand(c.Blocks, c.BaseBps)
	for _, s := range svcs {
		if e >= s.Start && e < s.End {
			d[s.Src][s.Dst] += s.Bps
			d[s.Dst][s.Src] += s.Bps
		}
	}
	scale := 1.0
	if c.DiurnalAmplitude > 0 {
		scale += c.DiurnalAmplitude * math.Sin(2*math.Pi*float64(e)/float64(c.DiurnalPeriodEpochs))
	}
	if scale != 1 {
		for i := range d {
			for j := range d[i] {
				d[i][j] *= scale
			}
		}
	}
	if c.BurstProb > 0 {
		rng := sim.Substream(c.Seed, uint64(e)+1)
		if rng.Bernoulli(c.BurstProb) {
			i := rng.Intn(c.Blocks)
			j := rng.Intn(c.Blocks)
			for j == i {
				j = rng.Intn(c.Blocks)
			}
			burst := c.BurstFactor * c.ServiceMeanBps
			if burst <= 0 {
				burst = c.BurstFactor * c.BaseBps
			}
			d[i][j] += burst
			d[j][i] += burst
		}
	}
	return d
}

// Epoch returns epoch e's offered-rate matrix (bytes/s).
func (c TraceConfig) Epoch(e int) ([][]float64, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	if e < 0 || e >= c.Epochs {
		return nil, fmt.Errorf("%w: epoch %d outside [0,%d)", ErrConfig, e, c.Epochs)
	}
	return c.epochMatrix(e, c.services()), nil
}

// Generate materializes the whole trace, fanning epoch construction out on
// the worker pool (each epoch writes only its own slot, and draws only
// from its own substream, so the trace is identical at any worker count).
func (c TraceConfig) Generate() ([][][]float64, error) {
	c = c.withDefaults()
	if err := c.validate(); err != nil {
		return nil, err
	}
	svcs := c.services()
	out := make([][][]float64, c.Epochs)
	par.Map("te_trace", c.Epochs, func(e int) {
		out[e] = c.epochMatrix(e, svcs)
	})
	return out, nil
}
