package te

import (
	"context"
	"time"
)

// RunnerConfig parameterizes a background Runner.
type RunnerConfig struct {
	Loop Config
	// Trace is the synthetic offered-load source the daemon replays; a
	// zero value gets DefaultDaemonTrace for the loop's geometry.
	Trace TraceConfig
	// Interval is the wall-clock time between epochs (default
	// Loop.EpochSeconds, or 2s when that is unset).
	Interval time.Duration
	// OnStep, when non-nil, observes every epoch's plan (for logging).
	OnStep func(epoch int, plan *Plan)
}

// DefaultDaemonTrace returns a saturating diurnal/bursty trace sized for
// a daemon's demo loop: hot service pairs well above trunk rate (so
// engineering pays), a thin background, and a long wraparound horizon.
func DefaultDaemonTrace(blocks int, trunkBps float64) TraceConfig {
	return TraceConfig{
		Blocks:           blocks,
		Epochs:           1 << 16,
		BaseBps:          trunkBps / 50,
		NumServices:      2 * blocks,
		ServiceMeanBps:   8 * trunkBps,
		DiurnalAmplitude: 0.3,
		BurstProb:        0.2,
		Seed:             1,
	}
}

// Runner drives a Loop from a synthetic trace on a wall-clock ticker —
// the daemon-embedded form of the TE loop. The Loop itself is
// concurrency-safe, so status can be served while the runner ticks.
type Runner struct {
	loop     *Loop
	trace    TraceConfig
	interval time.Duration
	onStep   func(int, *Plan)
}

// NewRunner builds the loop and validates the trace.
func NewRunner(cfg RunnerConfig) (*Runner, error) {
	if cfg.Loop.EpochSeconds <= 0 {
		cfg.Loop.EpochSeconds = 2
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Duration(cfg.Loop.EpochSeconds * float64(time.Second))
	}
	if cfg.Trace.Blocks == 0 {
		cfg.Trace = DefaultDaemonTrace(cfg.Loop.Blocks, cfg.Loop.TrunkBps)
	}
	loop, err := NewLoop(cfg.Loop)
	if err != nil {
		return nil, err
	}
	if _, err := cfg.Trace.Epoch(0); err != nil {
		return nil, err
	}
	return &Runner{loop: loop, trace: cfg.Trace, interval: cfg.Interval, onStep: cfg.OnStep}, nil
}

// Loop returns the runner's loop (for status serving).
func (r *Runner) Loop() *Loop { return r.loop }

// Run ticks until ctx is cancelled, feeding one trace epoch per tick
// (wrapping around the trace horizon) and stepping the loop. Step errors
// end the run.
func (r *Runner) Run(ctx context.Context) error {
	tick := time.NewTicker(r.interval)
	defer tick.Stop()
	for epoch := 0; ; epoch++ {
		select {
		case <-ctx.Done():
			return nil
		case <-tick.C:
		}
		m, err := r.trace.Epoch(epoch % r.trace.Epochs)
		if err != nil {
			return err
		}
		if err := r.loop.ObserveRates(m); err != nil {
			return err
		}
		plan, err := r.loop.Step()
		if err != nil {
			return err
		}
		if r.onStep != nil {
			r.onStep(epoch, plan)
		}
	}
}
