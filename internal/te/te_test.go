package te

import (
	"errors"
	"math"
	"testing"

	"lightwave/internal/dcn"
	"lightwave/internal/telemetry"
)

func TestCollectorRollReturnsRates(t *testing.T) {
	c, err := NewCollector(4, 10)
	if err != nil {
		t.Fatal(err)
	}
	c.Observe(0, 1, 100)
	c.Observe(0, 1, 50)
	c.Observe(2, 3, 30)
	// Garbage that must be ignored, not crash or count.
	c.Observe(-1, 2, 10)
	c.Observe(0, 9, 10)
	c.Observe(1, 1, 10)
	c.Observe(0, 2, -5)
	c.Observe(0, 2, math.NaN())
	c.Observe(0, 2, math.Inf(1))

	m := c.Roll()
	if got := m[0][1]; got != 15 {
		t.Errorf("rate[0][1] = %g, want 15", got)
	}
	if got := m[2][3]; got != 3 {
		t.Errorf("rate[2][3] = %g, want 3", got)
	}
	if got := m[0][2]; got != 0 {
		t.Errorf("rate[0][2] = %g, want 0 (garbage observations must be dropped)", got)
	}
	// Roll resets.
	m = c.Roll()
	if got := m[0][1]; got != 0 {
		t.Errorf("after reset rate[0][1] = %g, want 0", got)
	}
}

func TestCollectorObserveRatesValidates(t *testing.T) {
	c, err := NewCollector(3, 1)
	if err != nil {
		t.Fatal(err)
	}
	bad := dcn.UniformDemand(3, 1)
	bad[0][1] = math.NaN()
	if err := c.ObserveRates(bad); !errors.Is(err, ErrMatrix) {
		t.Fatalf("NaN rate: err = %v, want ErrMatrix", err)
	}
	if err := c.ObserveRates([][]float64{{0, 1}}); !errors.Is(err, ErrMatrix) {
		t.Fatalf("wrong shape: err = %v, want ErrMatrix", err)
	}
	ok := dcn.UniformDemand(3, 7)
	if err := c.ObserveRates(ok); err != nil {
		t.Fatal(err)
	}
	m := c.Roll()
	if got := m[0][1]; got != 7 {
		t.Errorf("rate[0][1] = %g, want 7", got)
	}
}

func TestCollectorConfigErrors(t *testing.T) {
	if _, err := NewCollector(1, 1); !errors.Is(err, ErrConfig) {
		t.Errorf("1 block: err = %v, want ErrConfig", err)
	}
	if _, err := NewCollector(4, 0); !errors.Is(err, ErrConfig) {
		t.Errorf("zero epoch: err = %v, want ErrConfig", err)
	}
}

func TestPredictorTracksSteadyDemand(t *testing.T) {
	p, err := NewPredictor(3, PredictorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	obs := dcn.UniformDemand(3, 100)
	for e := 0; e < 30; e++ {
		if _, err := p.Update(obs); err != nil {
			t.Fatal(err)
		}
	}
	pred := p.Predict()
	for i := range pred {
		for j := range pred[i] {
			if i == j {
				continue
			}
			if math.Abs(pred[i][j]-100) > 5 {
				t.Fatalf("pred[%d][%d] = %g, want ~100", i, j, pred[i][j])
			}
		}
	}
	// Error of a converged prediction against the same steady matrix is ~0.
	st, err := p.Update(obs)
	if err != nil {
		t.Fatal(err)
	}
	if st.Error < 0 || st.Error > 0.05 {
		t.Errorf("steady-state prediction error = %g, want ~0", st.Error)
	}
}

func TestPredictorBurstHedgesWithoutPoisoningBaseline(t *testing.T) {
	p, err := NewPredictor(2, PredictorConfig{Alpha: 0.3, PeakDecay: 0.8, Warmup: 4})
	if err != nil {
		t.Fatal(err)
	}
	steady := dcn.UniformDemand(2, 100)
	for e := 0; e < 20; e++ {
		if _, err := p.Update(steady); err != nil {
			t.Fatal(err)
		}
	}
	burst := dcn.UniformDemand(2, 100)
	burst[0][1] = 1000
	st, err := p.Update(burst)
	if err != nil {
		t.Fatal(err)
	}
	if st.Bursts == 0 {
		t.Fatal("10x spike not flagged as a burst")
	}
	pred := p.Predict()
	if pred[0][1] < 900 {
		t.Errorf("post-burst pred[0][1] = %g, want >= 900 (peak hold)", pred[0][1])
	}
	// The detector's baseline must not have been taught the burst: after
	// the peak decays away, the prediction returns near the steady rate.
	for e := 0; e < 40; e++ {
		if _, err := p.Update(steady); err != nil {
			t.Fatal(err)
		}
	}
	pred = p.Predict()
	if math.Abs(pred[0][1]-100) > 10 {
		t.Errorf("post-decay pred[0][1] = %g, want ~100 (baseline unpoisoned)", pred[0][1])
	}
}

func TestPredictorRejectsBadShape(t *testing.T) {
	p, err := NewPredictor(3, PredictorConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Update([][]float64{{0, 1}}); !errors.Is(err, ErrMatrix) {
		t.Fatalf("err = %v, want ErrMatrix", err)
	}
	if _, err := NewPredictor(1, PredictorConfig{}); !errors.Is(err, ErrConfig) {
		t.Fatalf("1 block: err = %v, want ErrConfig", err)
	}
}

func TestRegistryRoundTrip(t *testing.T) {
	old := Registry()
	defer SetRegistry(old)
	r := telemetry.NewRegistry()
	SetRegistry(r)
	if Registry() != r {
		t.Fatal("SetRegistry did not take")
	}
	SetRegistry(nil)
	if Registry() == nil {
		t.Fatal("SetRegistry(nil) must install a fresh registry, not nil")
	}
}
