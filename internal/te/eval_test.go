package te

import (
	"reflect"
	"testing"

	"lightwave/internal/par"
)

// testEvalConfig is small enough to replay in a few seconds yet bursty
// and skewed enough that topology engineering matters.
func testEvalConfig() EvalConfig {
	return EvalConfig{
		Trace: TraceConfig{
			Blocks: 8, Epochs: 16,
			BaseBps:             1,
			NumServices:         8,
			ServiceMeanBps:      60,
			ServiceMinEpochs:    8,
			DiurnalAmplitude:    0.3,
			DiurnalPeriodEpochs: 16,
			BurstProb:           0.25,
			Seed:                42,
		},
		Uplinks:        14,
		TrunkBps:       50e9,
		LoadFraction:   0.9,
		EpochSeconds:   60,
		SimSeconds:     1,
		MeanFlowBytes:  2e9,
		Predictor:      PredictorConfig{Warmup: 2},
		CooldownEpochs: 2,
		Seed:           7,
	}
}

func TestEvaluateOnlineBeatsStaticAndHoldsFloor(t *testing.T) {
	res, err := Evaluate(testEvalConfig())
	if err != nil {
		t.Fatal(err)
	}
	if res.Loop.Reconfigs == 0 {
		t.Fatalf("online loop never reconfigured: %+v", res.Loop)
	}
	if res.Online.EffectiveBps <= res.Static.EffectiveBps {
		t.Errorf("online %g bps does not beat static %g bps",
			res.Online.EffectiveBps, res.Static.EffectiveBps)
	}
	if res.Oracle.MeanBps < res.Online.MeanBps*0.95 {
		t.Errorf("oracle %g bps implausibly below online %g bps",
			res.Oracle.MeanBps, res.Online.MeanBps)
	}
	// The acceptance invariant: no reconfiguration stage ever dipped
	// below the configured capacity floor (default 0.75).
	if res.MinResidualFraction < 0.75-1e-9 {
		t.Errorf("residual capacity fell to %g, floor is 0.75", res.MinResidualFraction)
	}
	if res.OnlineGain <= 0 {
		t.Errorf("OnlineGain = %g, want > 0", res.OnlineGain)
	}
	if len(res.Online.PerEpochBps) != 16 {
		t.Errorf("per-epoch series has %d entries, want 16", len(res.Online.PerEpochBps))
	}
}

func TestEvaluateDeterministicAcrossWorkerCounts(t *testing.T) {
	prev := par.SetWorkers(1)
	defer par.SetWorkers(prev)

	cfg := testEvalConfig()
	cfg.Trace.Epochs = 8
	base, err := Evaluate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{4, 8} {
		par.SetWorkers(w)
		got, err := Evaluate(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(base, got) {
			t.Fatalf("Evaluate differs between 1 and %d workers:\n1: %+v\n%d: %+v", w, base, w, got)
		}
	}
}

func TestTraceDeterministicEpochAccess(t *testing.T) {
	cfg := testEvalConfig().Trace
	all, err := cfg.Generate()
	if err != nil {
		t.Fatal(err)
	}
	// Random epoch access must agree with bulk generation.
	for _, e := range []int{0, 3, cfg.Epochs - 1} {
		m, err := cfg.Epoch(e)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(m, all[e]) {
			t.Fatalf("Epoch(%d) differs from Generate()[%d]", e, e)
		}
	}
	if _, err := cfg.Epoch(cfg.Epochs); err == nil {
		t.Error("out-of-range epoch accepted")
	}
}
