package te

import (
	"testing"

	"lightwave/internal/dcn"
)

// BenchmarkPredictorUpdate measures the per-epoch cost of feeding one
// observed matrix through the per-pair EWMA detectors and peak-holds —
// the collector-side hot path of the loop.
func BenchmarkPredictorUpdate(b *testing.B) {
	const blocks = 16
	p, err := NewPredictor(blocks, PredictorConfig{})
	if err != nil {
		b.Fatal(err)
	}
	obs := dcn.SkewedDemand(blocks, 1e9, 8, 200, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Update(obs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkPlannerDecide measures one full planning decision: engineer a
// target for the predicted matrix, solve both fluid models, and stage the
// diff under the capacity floor.
func BenchmarkPlannerDecide(b *testing.B) {
	const blocks, uplinks = 16, 30
	pl, err := NewPlanner(PlannerConfig{Blocks: blocks, Uplinks: uplinks, TrunkBps: 50e9})
	if err != nil {
		b.Fatal(err)
	}
	mesh, err := dcn.UniformMesh(blocks, uplinks)
	if err != nil {
		b.Fatal(err)
	}
	predicted := dcn.SkewedDemand(blocks, 1e9, 8, 1000, 3)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pl.Decide(mesh, predicted); err != nil {
			b.Fatal(err)
		}
	}
}
