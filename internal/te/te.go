// Package te closes the spine-free DCN control loop of §2.1/§4 online:
// measure inter-block traffic, predict demand, re-engineer the logical
// topology, and apply it through staged OCS reconfiguration. It is the
// "traffic-aware topology engineering" loop that runs continuously in
// production, built from four pieces:
//
//	Collector  — streams per-epoch inter-block byte counts into a
//	             traffic matrix (fed by synthetic diurnal/bursty
//	             generators in trace.go, deterministic via sim.Substream)
//	Predictor  — per-pair EWMA baselines (the telemetry/anomaly
//	             machinery) hedged with a decaying peak-hold, so bursts
//	             raise the prediction without teaching the baseline that
//	             bursts are normal
//	Planner    — reconfigures only when the predicted throughput gain
//	             (dcn.AchievedThroughput on the predicted matrix) clears
//	             a hysteresis threshold, and emits a staged
//	             drain -> OCS reprogram -> undrain plan whose per-stage
//	             residual capacity never drops below a configured floor,
//	             costed with cost.OCSTechnology.ReconfigTime
//	Applier    — realizes each stage on hardware: dcn.Fabric.Program
//	             directly, or coordinated through the fleet.Manager
//	             reconcile path (OCS maintenance drains + events)
//
// Everything is deterministic at any worker count: randomness flows only
// through sim.Substream and fan-out only through internal/par, so a fixed
// seed replays bit-identically under `go test -cpu 1,4,8`.
//
// The loop reports te_* counters (epochs, reconfigs, staged drains,
// predicted-vs-actual error, drained capacity-seconds) in a
// telemetry.Registry; daemons swap in their own registry with SetRegistry
// so the counters appear on /metrics.
package te

import (
	"errors"
	"sync/atomic"

	"lightwave/internal/telemetry"
)

// ErrConfig is returned for degenerate loop, trace, or planner
// configurations.
var ErrConfig = errors.New("te: invalid configuration")

// ErrMatrix is returned when an observed matrix does not match the loop's
// block count or carries non-finite entries.
var ErrMatrix = errors.New("te: invalid traffic matrix")

// registry holds the subsystem's metrics; swap it with SetRegistry to
// surface the counters on a daemon's /metrics endpoint.
var registry atomic.Pointer[telemetry.Registry]

func init() {
	registry.Store(telemetry.NewRegistry())
}

// SetRegistry redirects the subsystem's telemetry to r (nil restores a
// fresh private registry). Daemons call this once at startup so te_*
// counters appear alongside their other metrics.
func SetRegistry(r *telemetry.Registry) {
	if r == nil {
		r = telemetry.NewRegistry()
	}
	registry.Store(r)
}

// Registry returns the registry currently receiving the subsystem's
// metrics.
func Registry() *telemetry.Registry {
	return registry.Load()
}
