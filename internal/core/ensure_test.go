package core

import (
	"testing"

	"lightwave/internal/topo"
)

func ensureFabric(t *testing.T, cubes int) *Fabric {
	t.Helper()
	f, err := New(DefaultConfig(cubes))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestEnsureSliceComposes(t *testing.T) {
	f := ensureFabric(t, 8)
	sl, changed, err := f.EnsureSlice("j", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("fresh compose reported unchanged")
	}
	if len(sl.Circuits) == 0 {
		t.Fatal("no circuits composed")
	}
	// Second ensure with the same intent is a no-op.
	_, changed, err = f.EnsureSlice("j", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Fatal("matching ensure reported a change")
	}
	// Empty cubes means "keep current cubes" for an existing slice.
	_, changed, err = f.EnsureSlice("j", topo.Shape{X: 4, Y: 4, Z: 16}, nil)
	if err != nil || changed {
		t.Fatalf("nil-cube ensure: changed=%v err=%v", changed, err)
	}
}

func TestEnsureSliceNewNeedsCubes(t *testing.T) {
	f := ensureFabric(t, 4)
	if _, _, err := f.EnsureSlice("j", topo.Shape{X: 4, Y: 4, Z: 4}, nil); err == nil {
		t.Fatal("new slice without cubes accepted")
	}
}

func TestEnsureSliceReshapes(t *testing.T) {
	f := ensureFabric(t, 8)
	if _, _, err := f.EnsureSlice("j", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	sl, changed, err := f.EnsureSlice("j", topo.Shape{X: 4, Y: 8, Z: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("reshape reported unchanged")
	}
	if sl.Shape != (topo.Shape{X: 4, Y: 8, Z: 8}) {
		t.Fatalf("shape = %v", sl.Shape)
	}
}

func TestEnsureSliceHealsDeadCircuits(t *testing.T) {
	f := ensureFabric(t, 8)
	sl, _, err := f.EnsureSlice("j", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Tear one circuit down behind the control plane's back.
	r := sl.Circuits[0]
	sw, err := f.Switch(r.OCS)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Disconnect(f.PortFor(r.OCS, r.North)); err != nil {
		t.Fatal(err)
	}
	if f.circuitLive(r) {
		t.Fatal("circuit still live after disconnect")
	}
	_, changed, err := f.EnsureSlice("j", topo.Shape{X: 4, Y: 4, Z: 16}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Fatal("healing ensure reported unchanged")
	}
	if !f.circuitLive(r) {
		t.Fatal("circuit not re-programmed")
	}
}
