// Package core implements the lightwave fabric control plane — the paper's
// primary software contribution. A Fabric owns the pod's OCS fleet (48
// Palomar switches wired per Appendix A), the transceiver plant, and the
// cube inventory. It composes and destroys workload-sized slices by
// programming OCS cross-connects (validating the optical budget of every
// circuit before relying on it), guarantees that reconfiguration never
// disturbs circuits of other slices (job isolation, §2.3), swaps failed
// cubes out of running slices (§4.2.2), and exports telemetry with
// anomaly-based alerting (§3.2.2).
package core

import (
	"errors"
	"fmt"
	"sort"

	"lightwave/internal/dsp"
	"lightwave/internal/fec"
	"lightwave/internal/ocs"
	"lightwave/internal/optics"
	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

// Config parameterizes a fabric.
type Config struct {
	// Cubes is the number of installed elemental cubes (≤ 64); cubes can
	// be added later (incremental deployment, §4.2.3).
	Cubes int
	// Transceiver is the module generation on every cube link.
	Transceiver optics.Generation
	// Circulator is the circulator model in the bidi modules.
	Circulator optics.Circulator
	// OCS configures each Palomar switch; Seed is perturbed per switch so
	// units differ like real hardware.
	OCS ocs.Config
	// FiberKM is the typical cube-to-OCS-to-cube fiber length.
	FiberKM float64
	// SafetyMarginDB is the minimum accepted link margin.
	SafetyMarginDB float64
	// Metrics and Alerts receive telemetry; nil disables them.
	Metrics *telemetry.Registry
	Alerts  telemetry.AlertSink
	// AutoRepairLinks makes a Critical BER alert on a circuit trigger an
	// automatic spare-port link repair (§3.2.2's deep integration of
	// monitoring with control).
	AutoRepairLinks bool
}

// DefaultConfig returns a production-style configuration with the 2x200G
// bidi CWDM4 module.
func DefaultConfig(cubes int) Config {
	gen, err := optics.GenerationByName("2x200G-bidi-CWDM4")
	if err != nil {
		panic(err)
	}
	return Config{
		Cubes:          cubes,
		Transceiver:    gen,
		Circulator:     optics.DefaultCirculator(),
		OCS:            ocs.DefaultConfig(),
		FiberKM:        0.12,
		SafetyMarginDB: 1.0,
	}
}

// Slice is a composed sub-machine.
type Slice struct {
	Name  string
	Shape topo.Shape
	Cubes []int
	// Circuits are the OCS cross-connections realizing the slice.
	Circuits []topo.CircuitReq
	// WorstMarginDB is the lowest link margin among the slice's circuits.
	WorstMarginDB float64
}

// Errors returned by the fabric.
var (
	ErrCubeRange     = errors.New("core: cube out of range")
	ErrCubeBusy      = errors.New("core: cube already in a slice")
	ErrCubeUnhealthy = errors.New("core: cube unhealthy")
	ErrSliceExists   = errors.New("core: slice name in use")
	ErrNoSlice       = errors.New("core: no such slice")
	ErrLinkBudget    = errors.New("core: insufficient optical link margin")
	ErrNoSpareCube   = errors.New("core: no healthy free cube for swap")
	ErrNotInstalled  = errors.New("core: cube not installed")
)

// Fabric is the control plane of one superpod lightwave fabric.
type Fabric struct {
	cfg      Config
	switches []*ocs.Switch // indexed by topo.OCSID

	installed []bool
	healthy   []bool
	owner     []string // slice name per cube, "" when free

	slices map[string]*Slice

	// portMap records spare-port repatches: (OCS, cube) → physical port.
	// Absent entries use the identity wiring of the cable plan (port =
	// cube id).
	portMap map[portKey]ocs.PortID

	rx fecStack

	metricSlices *telemetry.Counter
	metricSwaps  *telemetry.Counter
	metricMargin *telemetry.Distribution
	berDetectors map[string]*telemetry.Detector
}

// fecStack bundles the receiver and FEC models used for budget validation.
type fecStack struct {
	receiver dsp.Receiver
	stack    fec.Concatenated
}

// New builds the fabric: 48 OCSes (Appendix A wiring) and the installed
// cube inventory.
func New(cfg Config) (*Fabric, error) {
	if cfg.Cubes < 1 || cfg.Cubes > 64 {
		return nil, fmt.Errorf("core: cube count %d out of range [1,64]", cfg.Cubes)
	}
	f := &Fabric{
		cfg:          cfg,
		installed:    make([]bool, 64),
		healthy:      make([]bool, 64),
		owner:        make([]string, 64),
		slices:       make(map[string]*Slice),
		portMap:      make(map[portKey]ocs.PortID),
		berDetectors: make(map[string]*telemetry.Detector),
		rx: fecStack{
			receiver: dsp.DefaultReceiver(),
			stack:    fec.NewConcatenated(),
		},
	}
	for i := 0; i < topo.NumOCS; i++ {
		oc := cfg.OCS
		oc.Seed = cfg.OCS.Seed + uint64(i)*0x9E37
		oc.Metrics = cfg.Metrics
		sw, err := ocs.New(oc)
		if err != nil {
			return nil, fmt.Errorf("core: building OCS %d: %w", i, err)
		}
		f.switches = append(f.switches, sw)
	}
	for c := 0; c < cfg.Cubes; c++ {
		f.installed[c] = true
		f.healthy[c] = true
	}
	if cfg.Metrics != nil {
		f.metricSlices = cfg.Metrics.Counter("fabric.slices_composed")
		f.metricSwaps = cfg.Metrics.Counter("fabric.cube_swaps")
		f.metricMargin = cfg.Metrics.Distribution("fabric.link_margin_db", 0, 1, 2, 3, 5, 8)
	}
	return f, nil
}

// Metrics returns the fabric's telemetry registry (nil when metrics were
// not configured).
func (f *Fabric) Metrics() *telemetry.Registry { return f.cfg.Metrics }

// portKey addresses one cube's fiber pair on one OCS.
type portKey struct {
	o    topo.OCSID
	cube int
}

// PortFor returns the physical OCS port carrying a cube's fibers on an
// OCS: the cable-plan identity unless a spare-port repair repatched it.
func (f *Fabric) PortFor(o topo.OCSID, cube int) ocs.PortID {
	if p, ok := f.portMap[portKey{o, cube}]; ok {
		return p
	}
	return ocs.PortID(cube)
}

// circuitLive reports whether circuit r is established on the hardware.
func (f *Fabric) circuitLive(r topo.CircuitReq) bool {
	sw := f.switches[r.OCS]
	got, ok := sw.ConnectionOf(f.PortFor(r.OCS, r.North))
	return ok && got == f.PortFor(r.OCS, r.South)
}

// disconnectCircuit tears circuit r down if it is established.
func (f *Fabric) disconnectCircuit(r topo.CircuitReq) error {
	if !f.circuitLive(r) {
		return nil
	}
	return f.switches[r.OCS].Disconnect(f.PortFor(r.OCS, r.North))
}

// InstalledCubes returns the number of installed cubes.
func (f *Fabric) InstalledCubes() int {
	n := 0
	for _, ok := range f.installed {
		if ok {
			n++
		}
	}
	return n
}

// FreeCubes returns the healthy, unallocated, installed cube ids.
func (f *Fabric) FreeCubes() []int {
	var out []int
	for c := range f.installed {
		if f.installed[c] && f.healthy[c] && f.owner[c] == "" {
			out = append(out, c)
		}
	}
	return out
}

// InstallCube adds a new cube to the fabric — the "pay as you grow"
// incremental deployment of §4.2.3: the cube is verified at rack level and
// becomes schedulable immediately, with no recabling of existing cubes.
func (f *Fabric) InstallCube(c int) error {
	if c < 0 || c >= 64 {
		return ErrCubeRange
	}
	f.installed[c] = true
	f.healthy[c] = true
	return nil
}

// Switch exposes one OCS for inspection and fault injection.
func (f *Fabric) Switch(id topo.OCSID) (*ocs.Switch, error) {
	if int(id) < 0 || int(id) >= len(f.switches) {
		return nil, fmt.Errorf("core: OCS %d out of range", id)
	}
	return f.switches[id], nil
}

// Slices returns the composed slices sorted by name.
func (f *Fabric) Slices() []*Slice {
	out := make([]*Slice, 0, len(f.slices))
	for _, s := range f.slices {
		out = append(out, s)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// GetSlice returns a slice by name.
func (f *Fabric) GetSlice(name string) (*Slice, error) {
	s, ok := f.slices[name]
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrNoSlice, name)
	}
	return s, nil
}

// ComposeSlice builds a slice of the given shape from the given cubes: it
// validates cube state, generates the torus circuits, checks every
// circuit's optical budget, and programs the OCSes. Existing slices are
// provably untouched (the OCS Apply primitive rejects any permutation that
// would steal a port).
func (f *Fabric) ComposeSlice(name string, shape topo.Shape, cubes []int) (*Slice, error) {
	if _, exists := f.slices[name]; exists {
		return nil, fmt.Errorf("%w: %q", ErrSliceExists, name)
	}
	for _, c := range cubes {
		if c < 0 || c >= 64 {
			return nil, fmt.Errorf("%w: %d", ErrCubeRange, c)
		}
		if !f.installed[c] {
			return nil, fmt.Errorf("%w: %d", ErrNotInstalled, c)
		}
		if !f.healthy[c] {
			return nil, fmt.Errorf("%w: %d", ErrCubeUnhealthy, c)
		}
		if f.owner[c] != "" {
			return nil, fmt.Errorf("%w: %d (slice %q)", ErrCubeBusy, c, f.owner[c])
		}
	}
	sl, err := topo.ComposeSlice(shape, cubes)
	if err != nil {
		return nil, err
	}
	reqs := sl.RequiredCircuits()

	// Pre-validate every circuit's optical budget on its target OCS.
	worst, err := f.validateBudgets(reqs)
	if err != nil {
		return nil, err
	}
	if err := f.applyCircuits(reqs); err != nil {
		return nil, err
	}

	s := &Slice{Name: name, Shape: shape, Cubes: append([]int(nil), cubes...),
		Circuits: reqs, WorstMarginDB: worst}
	f.slices[name] = s
	for _, c := range cubes {
		f.owner[c] = name
	}
	if f.metricSlices != nil {
		f.metricSlices.Inc()
	}
	return s, nil
}

// validateBudgets computes each circuit's optical budget and post-FEC BER
// and returns the worst margin.
func (f *Fabric) validateBudgets(reqs []topo.CircuitReq) (float64, error) {
	worst := 1e9
	a := optics.NewTransceiver(f.cfg.Transceiver)
	b := optics.NewTransceiver(f.cfg.Transceiver)
	for _, r := range reqs {
		sw := f.switches[r.OCS]
		loss := sw.IntrinsicLossDB(f.PortFor(r.OCS, r.North), f.PortFor(r.OCS, r.South)) + 0.1 // alignment residual allowance
		rl, err := sw.ReturnLossDB(f.PortFor(r.OCS, r.North))
		if err != nil {
			return 0, err
		}
		link := optics.NewBidiLink(a, b, f.cfg.Circulator, loss, rl, f.cfg.FiberKM)
		bud, err := link.BudgetTowardB()
		if err != nil {
			return 0, err
		}
		if bud.MarginDB < f.cfg.SafetyMarginDB {
			return 0, fmt.Errorf("%w: circuit ocs=%d %d->%d margin %.2f dB",
				ErrLinkBudget, r.OCS, r.North, r.South, bud.MarginDB)
		}
		// End-to-end check: post-FEC BER must be clean at the delivered
		// power with the link's MPI.
		ber := f.rx.receiver.PostFECBER(bud.RxPowerDBm,
			dsp.MPICondition{MPIDB: bud.MPIDB, OIM: true}, f.rx.stack)
		if ber > 1e-12 {
			return 0, fmt.Errorf("%w: circuit ocs=%d %d->%d post-FEC BER %.2g",
				ErrLinkBudget, r.OCS, r.North, r.South, ber)
		}
		if bud.MarginDB < worst {
			worst = bud.MarginDB
		}
		if f.metricMargin != nil {
			f.metricMargin.Observe(bud.MarginDB)
		}
	}
	return worst, nil
}

// applyCircuits groups circuits per OCS and applies them as batch
// permutations.
func (f *Fabric) applyCircuits(reqs []topo.CircuitReq) error {
	perOCS := make(map[topo.OCSID]ocs.Permutation)
	for _, r := range reqs {
		p := perOCS[r.OCS]
		if p == nil {
			p = ocs.Permutation{}
			perOCS[r.OCS] = p
		}
		p[f.PortFor(r.OCS, r.North)] = f.PortFor(r.OCS, r.South)
	}
	for id, p := range perOCS {
		if _, err := f.switches[id].Apply(p); err != nil {
			return fmt.Errorf("core: programming OCS %d: %w", id, err)
		}
	}
	return nil
}

// DestroySlice tears a slice down and frees its cubes.
func (f *Fabric) DestroySlice(name string) error {
	s, ok := f.slices[name]
	if !ok {
		return fmt.Errorf("%w: %q", ErrNoSlice, name)
	}
	for _, r := range s.Circuits {
		if err := f.disconnectCircuit(r); err != nil {
			return err
		}
	}
	for _, c := range s.Cubes {
		if f.owner[c] == name {
			f.owner[c] = ""
		}
	}
	delete(f.slices, name)
	return nil
}

// TotalCircuits returns the number of live circuits across the fleet.
func (f *Fabric) TotalCircuits() int {
	n := 0
	for _, sw := range f.switches {
		n += sw.NumCircuits()
	}
	return n
}
