package core

import (
	"testing"

	"lightwave/internal/topo"
)

func TestRepairLinkRepatchesToSpare(t *testing.T) {
	f := newFabric(t, 8)
	s, err := f.ComposeSlice("job", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Cube 1's fiber pair on OCS 32 (a Z-dimension switch) is damaged.
	o := topo.OCSID(32)
	spare, err := f.RepairLink(o, 1)
	if err != nil {
		t.Fatal(err)
	}
	if int(spare) < 128 {
		t.Fatalf("spare port = %d, want one of the reserved 8", spare)
	}
	if f.PortFor(o, 1) != spare {
		t.Fatal("port map not updated")
	}
	// Every slice circuit — including the repatched ones — is live.
	for _, r := range s.Circuits {
		if !f.circuitLive(r) {
			t.Fatalf("circuit %+v dead after link repair", r)
		}
	}
	// Other OCSes keep identity wiring.
	if f.PortFor(topo.OCSID(0), 1) != 1 {
		t.Fatal("unrelated OCS remapped")
	}
}

func TestRepairLinkSurvivesSubsequentOps(t *testing.T) {
	f := newFabric(t, 8)
	if _, err := f.ComposeSlice("job", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.RepairLink(topo.OCSID(32), 1); err != nil {
		t.Fatal(err)
	}
	// Reshape after the repair: the remapped port must be used throughout.
	s, err := f.ReshapeSlice("job", topo.Shape{X: 4, Y: 8, Z: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range s.Circuits {
		if !f.circuitLive(r) {
			t.Fatalf("circuit %+v dead after reshape on repaired port", r)
		}
	}
	// Destroy and recompose using the same cube: still works on the spare.
	if err := f.DestroySlice("job"); err != nil {
		t.Fatal(err)
	}
	if f.TotalCircuits() != 0 {
		t.Fatalf("circuits = %d after destroy", f.TotalCircuits())
	}
	if _, err := f.ComposeSlice("again", topo.Shape{X: 4, Y: 4, Z: 8}, []int{1, 2}); err != nil {
		t.Fatal(err)
	}
}

func TestRepairLinkOnIdleCube(t *testing.T) {
	f := newFabric(t, 4)
	spare, err := f.RepairLink(topo.OCSID(5), 2)
	if err != nil {
		t.Fatal(err)
	}
	if int(spare) < 128 {
		t.Fatalf("spare = %d", spare)
	}
	// Compose afterwards: the remap applies transparently.
	if _, err := f.ComposeSlice("j", topo.Shape{X: 4, Y: 4, Z: 8}, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
}

func TestRepairLinkValidation(t *testing.T) {
	f := newFabric(t, 4)
	if _, err := f.RepairLink(topo.OCSID(99), 0); err == nil {
		t.Error("out-of-range OCS accepted")
	}
	if _, err := f.RepairLink(topo.OCSID(0), 70); err == nil {
		t.Error("out-of-range cube accepted")
	}
	if _, err := f.RepairLink(topo.OCSID(0), 3); err != nil {
		t.Error(err)
	}
}

func TestAutoRepairOnCriticalBER(t *testing.T) {
	cfg := DefaultConfig(8)
	cfg.AutoRepairLinks = true
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ComposeSlice("job", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	o := topo.OCSID(16)
	if f.PortFor(o, 1) != 1 {
		t.Fatal("unexpected initial mapping")
	}
	// A KP4-threshold breach on cube 1's lane triggers the repair.
	if !f.ObserveLinkBER(o, 1, 1e-3) {
		t.Fatal("breach not flagged")
	}
	if int(f.PortFor(o, 1)) < 128 {
		t.Fatalf("auto-repair did not repatch: port %d", f.PortFor(o, 1))
	}
	s, _ := f.GetSlice("job")
	for _, r := range s.Circuits {
		if !f.circuitLive(r) {
			t.Fatalf("circuit %+v dead after auto-repair", r)
		}
	}
}

func TestNoAutoRepairWhenDisabled(t *testing.T) {
	f := newFabric(t, 4)
	o := topo.OCSID(7)
	f.ObserveLinkBER(o, 2, 1e-3)
	if f.PortFor(o, 2) != 2 {
		t.Fatal("repair ran despite AutoRepairLinks=false")
	}
}
