package core

import (
	"fmt"
	"testing"

	"lightwave/internal/sim"
	"lightwave/internal/topo"
)

// TestControlPlaneFuzz drives the fabric through long random sequences of
// compose / destroy / reshape / fail / repair operations and checks global
// invariants after every step: circuit accounting matches across slices
// and hardware, cube ownership is exclusive, and every slice's torus is
// fully wired. This is the "everything breaks at scale" test (§6).
func TestControlPlaneFuzz(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			fuzzRun(t, seed, 150)
		})
	}
}

func fuzzRun(t *testing.T, seed uint64, steps int) {
	t.Helper()
	rng := sim.NewRand(seed)
	f, err := New(DefaultConfig(16))
	if err != nil {
		t.Fatal(err)
	}
	names := []string{}
	nextName := 0

	randShapeFor := func(cubes int) (topo.Shape, bool) {
		shapes := topo.ShapesFor(cubes)
		if len(shapes) == 0 {
			return topo.Shape{}, false
		}
		return shapes[rng.Intn(len(shapes))], true
	}

	for step := 0; step < steps; step++ {
		switch rng.Intn(6) {
		case 0, 1: // compose
			free := f.FreeCubes()
			if len(free) == 0 {
				continue
			}
			n := 1 + rng.Intn(len(free))
			// Clamp to a handful for speed.
			if n > 4 {
				n = 4
			}
			shape, ok := randShapeFor(n)
			if !ok {
				continue
			}
			rng.Shuffle(len(free), func(i, j int) { free[i], free[j] = free[j], free[i] })
			name := fmt.Sprintf("job%d", nextName)
			nextName++
			if _, err := f.ComposeSlice(name, shape, free[:n]); err == nil {
				names = append(names, name)
			}
		case 2: // destroy
			if len(names) == 0 {
				continue
			}
			i := rng.Intn(len(names))
			if err := f.DestroySlice(names[i]); err != nil {
				t.Fatalf("step %d destroy: %v", step, err)
			}
			names = append(names[:i], names[i+1:]...)
		case 3: // reshape (same cubes)
			if len(names) == 0 {
				continue
			}
			name := names[rng.Intn(len(names))]
			s, err := f.GetSlice(name)
			if err != nil {
				t.Fatal(err)
			}
			shape, ok := randShapeFor(len(s.Cubes))
			if !ok {
				continue
			}
			// Reshape may be legitimately rejected (e.g. the slice kept a
			// failed cube because no spare was available); rejection must
			// be atomic, which the invariant check below verifies.
			_, _ = f.ReshapeSlice(name, shape, nil)
		case 4: // fail a cube
			c := rng.Intn(16)
			_, _ = f.MarkCubeFailed(c) // may legitimately fail (no spares)
		case 5: // repair a cube
			c := rng.Intn(16)
			_ = f.RepairCube(c)
		}
		checkInvariants(t, f, step)
	}
}

// checkInvariants asserts the fabric's global consistency.
func checkInvariants(t *testing.T, f *Fabric, step int) {
	t.Helper()
	// 1. Circuit accounting: the union of slice circuits equals the live
	// hardware circuits exactly.
	want := map[topo.CircuitReq]int{}
	total := 0
	for _, s := range f.Slices() {
		for _, r := range s.Circuits {
			want[r]++
			total++
		}
	}
	if got := f.TotalCircuits(); got != total {
		t.Fatalf("step %d: hardware has %d circuits, slices expect %d", step, got, total)
	}
	for r, n := range want {
		if n != 1 {
			t.Fatalf("step %d: circuit %+v claimed by %d slices", step, r, n)
		}
		sw, err := f.Switch(r.OCS)
		if err != nil {
			t.Fatal(err)
		}
		got, ok := sw.ConnectionOf(f.PortFor(r.OCS, r.North))
		if !ok || got != f.PortFor(r.OCS, r.South) {
			t.Fatalf("step %d: circuit %+v missing on hardware", step, r)
		}
	}
	// 2. Cube ownership: every slice's cubes are owned by it, exclusively.
	owner := map[int]string{}
	for _, s := range f.Slices() {
		for _, c := range s.Cubes {
			if prev, dup := owner[c]; dup {
				t.Fatalf("step %d: cube %d in slices %q and %q", step, c, prev, s.Name)
			}
			owner[c] = s.Name
		}
	}
	// 3. Free cubes are not in any slice.
	for _, c := range f.FreeCubes() {
		if s, busy := owner[c]; busy {
			t.Fatalf("step %d: free cube %d owned by %q", step, c, s)
		}
	}
}
