package core_test

import (
	"fmt"
	"log"

	"lightwave/internal/core"
	"lightwave/internal/topo"
)

// Example demonstrates the fabric lifecycle: compose a slice from
// non-contiguous cubes, survive a cube failure via automatic swap, and
// tear down.
func Example() {
	fabric, err := core.New(core.DefaultConfig(8))
	if err != nil {
		log.Fatal(err)
	}

	slice, err := fabric.ComposeSlice("demo", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 2, 5, 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("circuits:", len(slice.Circuits))

	replacement, err := fabric.MarkCubeFailed(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("replacement:", replacement)

	if err := fabric.DestroySlice("demo"); err != nil {
		log.Fatal(err)
	}
	fmt.Println("live circuits:", fabric.TotalCircuits())
	// Output:
	// circuits: 192
	// replacement: 1
	// live circuits: 0
}
