package core

import (
	"errors"
	"testing"

	"lightwave/internal/topo"
)

func TestReshapeSameCubes(t *testing.T) {
	f := newFabric(t, 8)
	_, err := f.ComposeSlice("job", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	s, err := f.ReshapeSlice("job", topo.Shape{X: 4, Y: 8, Z: 8}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s.Shape != (topo.Shape{X: 4, Y: 8, Z: 8}) {
		t.Fatalf("shape = %v", s.Shape)
	}
	// All new circuits live, no stale circuits anywhere.
	if f.TotalCircuits() != len(s.Circuits) {
		t.Fatalf("fleet has %d circuits, slice expects %d", f.TotalCircuits(), len(s.Circuits))
	}
	for _, r := range s.Circuits {
		sw, _ := f.Switch(r.OCS)
		if got, ok := sw.ConnectionOf(f.PortFor(r.OCS, r.North)); !ok || got != f.PortFor(r.OCS, r.South) {
			t.Fatalf("circuit %+v missing after reshape", r)
		}
	}
}

func TestReshapeGrow(t *testing.T) {
	f := newFabric(t, 8)
	if _, err := f.ComposeSlice("job", topo.Shape{X: 4, Y: 4, Z: 8}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	s, err := f.ReshapeSlice("job", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 1, 4, 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Cubes) != 4 {
		t.Fatalf("cubes = %v", s.Cubes)
	}
	if len(f.FreeCubes()) != 4 {
		t.Fatalf("free = %v", f.FreeCubes())
	}
}

func TestReshapeShrinkFreesCubes(t *testing.T) {
	f := newFabric(t, 8)
	if _, err := f.ComposeSlice("job", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReshapeSlice("job", topo.Shape{X: 4, Y: 4, Z: 8}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	free := f.FreeCubes()
	if len(free) != 6 {
		t.Fatalf("free = %v", free)
	}
	// Cubes 2,3 released and reusable.
	if _, err := f.ComposeSlice("other", topo.Shape{X: 4, Y: 4, Z: 8}, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
}

func TestReshapeDoesNotDisturbOtherSlices(t *testing.T) {
	f := newFabric(t, 12)
	other, err := f.ComposeSlice("other", topo.Shape{X: 4, Y: 4, Z: 16}, []int{8, 9, 10, 11})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ComposeSlice("job", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReshapeSlice("job", topo.Shape{X: 8, Y: 8, Z: 4}, nil); err != nil {
		t.Fatal(err)
	}
	for _, r := range other.Circuits {
		sw, _ := f.Switch(r.OCS)
		if got, ok := sw.ConnectionOf(f.PortFor(r.OCS, r.North)); !ok || got != f.PortFor(r.OCS, r.South) {
			t.Fatal("other slice disturbed by reshape")
		}
	}
}

func TestReshapeKeepsSharedCircuits(t *testing.T) {
	// Wraparound self-circuits along unchanged dimensions are shared
	// between configurations and must not flap (their loss is unchanged).
	f := newFabric(t, 8)
	s, err := f.ComposeSlice("job", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	// Record the loss of a circuit that survives (X self-wrap of cube 0).
	var keep topo.CircuitReq
	found := false
	for _, r := range s.Circuits {
		if r.OCS.DimOf() == 0 && r.North == 0 && r.South == 0 {
			keep = r
			found = true
			break
		}
	}
	if !found {
		t.Fatal("no X self-wrap circuit found")
	}
	lossBefore := circuitLoss(t, f, keep)
	// Reorder the Z ring (reverse cube order): X wraps survive.
	if _, err := f.ReshapeSlice("job", topo.Shape{X: 4, Y: 4, Z: 16}, []int{3, 2, 1, 0}); err != nil {
		t.Fatal(err)
	}
	if got := circuitLoss(t, f, keep); got != lossBefore {
		t.Fatalf("shared circuit realigned: %v -> %v", lossBefore, got)
	}
}

func circuitLoss(t *testing.T, f *Fabric, r topo.CircuitReq) float64 {
	t.Helper()
	sw, _ := f.Switch(r.OCS)
	for _, c := range sw.Circuits() {
		if int(c.North) == r.North && int(c.South) == r.South {
			return c.InsertionLossDB
		}
	}
	t.Fatalf("circuit %+v not found", r)
	return 0
}

func TestReshapeValidation(t *testing.T) {
	f := newFabric(t, 4)
	if _, err := f.ReshapeSlice("nope", topo.Shape{X: 4, Y: 4, Z: 4}, nil); !errors.Is(err, ErrNoSlice) {
		t.Errorf("err = %v", err)
	}
	if _, err := f.ComposeSlice("a", topo.Shape{X: 4, Y: 4, Z: 4}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ComposeSlice("b", topo.Shape{X: 4, Y: 4, Z: 4}, []int{1}); err != nil {
		t.Fatal(err)
	}
	// Growing onto another slice's cube is rejected.
	if _, err := f.ReshapeSlice("a", topo.Shape{X: 4, Y: 4, Z: 8}, []int{0, 1}); !errors.Is(err, ErrCubeBusy) {
		t.Errorf("err = %v", err)
	}
	// Wrong cube count for the shape.
	if _, err := f.ReshapeSlice("a", topo.Shape{X: 4, Y: 4, Z: 8}, nil); err == nil {
		t.Error("cube-count mismatch accepted")
	}
	// Slice must be intact after failed reshapes.
	if f.TotalCircuits() != 96 {
		t.Fatalf("circuits = %d after rejected reshapes", f.TotalCircuits())
	}
}
