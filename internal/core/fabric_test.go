package core

import (
	"errors"
	"testing"

	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

func newFabric(t *testing.T, cubes int) *Fabric {
	t.Helper()
	f, err := New(DefaultConfig(cubes))
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func seq(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func TestNewFabric(t *testing.T) {
	f := newFabric(t, 16)
	if f.InstalledCubes() != 16 {
		t.Errorf("installed = %d", f.InstalledCubes())
	}
	if len(f.FreeCubes()) != 16 {
		t.Errorf("free = %d", len(f.FreeCubes()))
	}
	if _, err := f.Switch(0); err != nil {
		t.Error(err)
	}
	if _, err := f.Switch(topo.NumOCS); err == nil {
		t.Error("out-of-range OCS accepted")
	}
	if _, err := New(DefaultConfig(0)); err == nil {
		t.Error("0 cubes accepted")
	}
}

func TestComposeSingleCubeSlice(t *testing.T) {
	f := newFabric(t, 4)
	s, err := f.ComposeSlice("job1", topo.Shape{X: 4, Y: 4, Z: 4}, []int{2})
	if err != nil {
		t.Fatal(err)
	}
	// 48 self-wrap circuits, one per OCS.
	if len(s.Circuits) != 48 {
		t.Fatalf("%d circuits", len(s.Circuits))
	}
	if f.TotalCircuits() != 48 {
		t.Fatalf("fleet circuits = %d", f.TotalCircuits())
	}
	if s.WorstMarginDB < DefaultConfig(4).SafetyMarginDB {
		t.Fatalf("worst margin %.2f below safety", s.WorstMarginDB)
	}
	if len(f.FreeCubes()) != 3 {
		t.Errorf("free = %d", len(f.FreeCubes()))
	}
}

func TestComposeFullPod(t *testing.T) {
	f := newFabric(t, 64)
	s, err := f.ComposeSlice("big", topo.Shape{X: 16, Y: 16, Z: 16}, seq(64))
	if err != nil {
		t.Fatal(err)
	}
	// 3 dims × 16 face indices × 64 cubes = 3072 circuits; 64 per OCS.
	if len(s.Circuits) != 3072 {
		t.Fatalf("%d circuits", len(s.Circuits))
	}
	if f.TotalCircuits() != 3072 {
		t.Fatalf("fleet circuits = %d", f.TotalCircuits())
	}
	for i := 0; i < topo.NumOCS; i++ {
		sw, _ := f.Switch(topo.OCSID(i))
		if sw.NumCircuits() != 64 {
			t.Fatalf("OCS %d has %d circuits", i, sw.NumCircuits())
		}
	}
}

func TestComposeValidation(t *testing.T) {
	f := newFabric(t, 8)
	shape := topo.Shape{X: 4, Y: 4, Z: 4}
	if _, err := f.ComposeSlice("a", shape, []int{99}); !errors.Is(err, ErrCubeRange) {
		t.Errorf("err = %v", err)
	}
	if _, err := f.ComposeSlice("a", shape, []int{20}); !errors.Is(err, ErrNotInstalled) {
		t.Errorf("err = %v", err)
	}
	if _, err := f.ComposeSlice("a", shape, []int{1}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ComposeSlice("a", shape, []int{2}); !errors.Is(err, ErrSliceExists) {
		t.Errorf("err = %v", err)
	}
	if _, err := f.ComposeSlice("b", shape, []int{1}); !errors.Is(err, ErrCubeBusy) {
		t.Errorf("err = %v", err)
	}
	if _, err := f.MarkCubeFailed(3); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ComposeSlice("c", shape, []int{3}); !errors.Is(err, ErrCubeUnhealthy) {
		t.Errorf("err = %v", err)
	}
}

func TestSliceIsolation(t *testing.T) {
	// §2.3/§3.2: composing a new slice must keep existing circuits
	// undisturbed — same connectivity, same loss.
	f := newFabric(t, 16)
	a, err := f.ComposeSlice("a", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	before := map[[2]int]float64{}
	for _, r := range a.Circuits {
		sw, _ := f.Switch(r.OCS)
		for _, c := range sw.Circuits() {
			if int(c.North) == r.North {
				before[[2]int{int(r.OCS), r.North}] = c.InsertionLossDB
			}
		}
	}
	if _, err := f.ComposeSlice("b", topo.Shape{X: 8, Y: 8, Z: 8}, []int{4, 5, 6, 7, 8, 9, 10, 11}); err != nil {
		t.Fatal(err)
	}
	for _, r := range a.Circuits {
		sw, _ := f.Switch(r.OCS)
		got, ok := sw.ConnectionOf(f.PortFor(r.OCS, r.North))
		if !ok || got != f.PortFor(r.OCS, r.South) {
			t.Fatalf("slice a circuit ocs=%d %d->%d disturbed", r.OCS, r.North, r.South)
		}
		for _, c := range sw.Circuits() {
			if int(c.North) == r.North {
				if c.InsertionLossDB != before[[2]int{int(r.OCS), r.North}] {
					t.Fatal("existing circuit realigned during new slice composition")
				}
			}
		}
	}
}

func TestDestroySlice(t *testing.T) {
	f := newFabric(t, 8)
	if _, err := f.ComposeSlice("a", topo.Shape{X: 4, Y: 4, Z: 8}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ComposeSlice("b", topo.Shape{X: 4, Y: 4, Z: 8}, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	circuitsWithBoth := f.TotalCircuits()
	if err := f.DestroySlice("a"); err != nil {
		t.Fatal(err)
	}
	if f.TotalCircuits() != circuitsWithBoth/2 {
		t.Fatalf("circuits after destroy = %d", f.TotalCircuits())
	}
	if len(f.FreeCubes()) != 6 {
		t.Fatalf("free = %d", len(f.FreeCubes()))
	}
	if err := f.DestroySlice("a"); !errors.Is(err, ErrNoSlice) {
		t.Errorf("err = %v", err)
	}
	// Slice b untouched.
	b, err := f.GetSlice("b")
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range b.Circuits {
		sw, _ := f.Switch(r.OCS)
		if got, ok := sw.ConnectionOf(f.PortFor(r.OCS, r.North)); !ok || got != f.PortFor(r.OCS, r.South) {
			t.Fatal("slice b lost a circuit")
		}
	}
}

func TestComposeRollbackOnBudgetFailure(t *testing.T) {
	// A fabric with absurd fiber length fails budget validation and must
	// not program any circuits.
	cfg := DefaultConfig(4)
	cfg.FiberKM = 100
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	_, err = f.ComposeSlice("a", topo.Shape{X: 4, Y: 4, Z: 4}, []int{0})
	if !errors.Is(err, ErrLinkBudget) {
		t.Fatalf("err = %v", err)
	}
	if f.TotalCircuits() != 0 {
		t.Fatal("circuits programmed despite budget failure")
	}
	if len(f.FreeCubes()) != 4 {
		t.Fatal("cubes leaked")
	}
}

func TestIncrementalDeployment(t *testing.T) {
	// §4.2.3: start small, add cubes, compose bigger slices — no
	// disturbance to running slices.
	f := newFabric(t, 2)
	if _, err := f.ComposeSlice("early", topo.Shape{X: 4, Y: 4, Z: 8}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	if err := f.InstallCube(2); err != nil {
		t.Fatal(err)
	}
	if err := f.InstallCube(3); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ComposeSlice("later", topo.Shape{X: 4, Y: 4, Z: 8}, []int{2, 3}); err != nil {
		t.Fatal(err)
	}
	if f.InstalledCubes() != 4 {
		t.Fatalf("installed = %d", f.InstalledCubes())
	}
	if err := f.InstallCube(99); !errors.Is(err, ErrCubeRange) {
		t.Errorf("err = %v", err)
	}
}

func TestSlicesListing(t *testing.T) {
	f := newFabric(t, 8)
	_, _ = f.ComposeSlice("zeta", topo.Shape{X: 4, Y: 4, Z: 4}, []int{0})
	_, _ = f.ComposeSlice("alpha", topo.Shape{X: 4, Y: 4, Z: 4}, []int{1})
	list := f.Slices()
	if len(list) != 2 || list[0].Name != "alpha" || list[1].Name != "zeta" {
		t.Fatalf("slices = %v", list)
	}
	if _, err := f.GetSlice("nope"); !errors.Is(err, ErrNoSlice) {
		t.Errorf("err = %v", err)
	}
}

func TestMetricsExported(t *testing.T) {
	cfg := DefaultConfig(4)
	cfg.Metrics = telemetry.NewRegistry()
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.ComposeSlice("a", topo.Shape{X: 4, Y: 4, Z: 4}, []int{0}); err != nil {
		t.Fatal(err)
	}
	if cfg.Metrics.Counter("fabric.slices_composed").Value() != 1 {
		t.Error("slice counter not incremented")
	}
	if cfg.Metrics.Distribution("fabric.link_margin_db").Snapshot().N == 0 {
		t.Error("no margin observations")
	}
}
