package core

import (
	"errors"
	"testing"

	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

func TestCubeSwapOnFailure(t *testing.T) {
	f := newFabric(t, 8)
	s, err := f.ComposeSlice("job", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	rc, err := f.MarkCubeFailed(1)
	if err != nil {
		t.Fatal(err)
	}
	if rc < 4 {
		t.Fatalf("replacement = %d, want a previously free cube", rc)
	}
	// The slice now runs on the replacement; its torus is fully wired.
	s, _ = f.GetSlice("job")
	for _, c := range s.Cubes {
		if c == 1 {
			t.Fatal("failed cube still in slice")
		}
	}
	for _, r := range s.Circuits {
		sw, _ := f.Switch(r.OCS)
		if got, ok := sw.ConnectionOf(f.PortFor(r.OCS, r.North)); !ok || got != f.PortFor(r.OCS, r.South) {
			t.Fatalf("circuit ocs=%d %d->%d missing after swap", r.OCS, r.North, r.South)
		}
	}
	// Exactly 48 circuits per cube touch the swap; the rest are original.
	if !f.CubeHealthy(rc) {
		t.Fatal("replacement unhealthy")
	}
	if f.CubeHealthy(1) {
		t.Fatal("failed cube still healthy")
	}
}

func TestSwapPreservesOtherSlices(t *testing.T) {
	f := newFabric(t, 12)
	_, err := f.ComposeSlice("a", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 1, 2, 3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := f.ComposeSlice("b", topo.Shape{X: 4, Y: 4, Z: 16}, []int{4, 5, 6, 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.MarkCubeFailed(0); err != nil {
		t.Fatal(err)
	}
	for _, r := range b.Circuits {
		sw, _ := f.Switch(r.OCS)
		if got, ok := sw.ConnectionOf(f.PortFor(r.OCS, r.North)); !ok || got != f.PortFor(r.OCS, r.South) {
			t.Fatal("slice b disturbed by slice a's swap")
		}
	}
}

func TestSwapWithoutSpares(t *testing.T) {
	f := newFabric(t, 2)
	if _, err := f.ComposeSlice("all", topo.Shape{X: 4, Y: 4, Z: 8}, []int{0, 1}); err != nil {
		t.Fatal(err)
	}
	_, err := f.MarkCubeFailed(0)
	if !errors.Is(err, ErrNoSpareCube) {
		t.Fatalf("err = %v", err)
	}
}

func TestFailFreeCubeNoSwap(t *testing.T) {
	f := newFabric(t, 4)
	rc, err := f.MarkCubeFailed(2)
	if err != nil {
		t.Fatal(err)
	}
	if rc != -1 {
		t.Fatalf("rc = %d for a free cube", rc)
	}
	if err := f.RepairCube(2); err != nil {
		t.Fatal(err)
	}
	if !f.CubeHealthy(2) {
		t.Fatal("cube not healthy after repair")
	}
}

func TestHealthErrors(t *testing.T) {
	f := newFabric(t, 4)
	if _, err := f.MarkCubeFailed(-1); !errors.Is(err, ErrCubeRange) {
		t.Errorf("err = %v", err)
	}
	if _, err := f.MarkCubeFailed(50); !errors.Is(err, ErrNotInstalled) {
		t.Errorf("err = %v", err)
	}
	if err := f.RepairCube(99); !errors.Is(err, ErrCubeRange) {
		t.Errorf("err = %v", err)
	}
	if f.CubeHealthy(99) {
		t.Error("out-of-range cube healthy")
	}
}

func TestBERMonitoringAlerts(t *testing.T) {
	cfg := DefaultConfig(4)
	sink := &telemetry.MemorySink{}
	cfg.Alerts = sink
	f, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Healthy readings: two decades under the KP4 threshold (Fig 13).
	for i := 0; i < 30; i++ {
		if f.ObserveLinkBER(3, 7, 2e-6) {
			t.Fatal("healthy BER flagged")
		}
	}
	// A reading above the KP4 threshold must raise a Critical alert.
	if !f.ObserveLinkBER(3, 7, 5e-4) {
		t.Fatal("threshold breach not flagged")
	}
	alerts := sink.Alerts()
	if len(alerts) != 1 || alerts[0].Severity != telemetry.Critical {
		t.Fatalf("alerts = %v", alerts)
	}
}

func TestBERDetectorsPerLink(t *testing.T) {
	f := newFabric(t, 4)
	f.ObserveLinkBER(0, 0, 1e-6)
	f.ObserveLinkBER(1, 0, 1e-6)
	if len(f.berDetectors) != 2 {
		t.Fatalf("%d detectors", len(f.berDetectors))
	}
}
