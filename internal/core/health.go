package core

import (
	"fmt"

	"lightwave/internal/fec"
	"lightwave/internal/ocs"
	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

// This file implements the fabric's failure handling: cube health tracking,
// swap-out of failed cubes from running slices (§4.2.2 — the availability
// advantage a static fabric cannot offer), and BER telemetry ingestion with
// anomaly detection (§3.2.2).

// MarkCubeFailed records a cube failure. If the cube belongs to a slice,
// the fabric automatically swaps a healthy free cube in (reprogramming only
// the circuits that touch the replaced position) and returns the
// replacement cube id; rc is -1 when no slice was affected.
func (f *Fabric) MarkCubeFailed(c int) (rc int, err error) {
	if c < 0 || c >= 64 {
		return -1, ErrCubeRange
	}
	if !f.installed[c] {
		return -1, fmt.Errorf("%w: %d", ErrNotInstalled, c)
	}
	f.healthy[c] = false
	name := f.owner[c]
	if name == "" {
		return -1, nil
	}
	return f.swapCube(name, c)
}

// RepairCube returns a failed cube to service.
func (f *Fabric) RepairCube(c int) error {
	if c < 0 || c >= 64 {
		return ErrCubeRange
	}
	if !f.installed[c] {
		return fmt.Errorf("%w: %d", ErrNotInstalled, c)
	}
	f.healthy[c] = true
	return nil
}

// CubeHealthy reports a cube's health.
func (f *Fabric) CubeHealthy(c int) bool {
	return c >= 0 && c < 64 && f.installed[c] && f.healthy[c]
}

// CubeInstalled reports whether a cube is physically installed,
// regardless of health.
func (f *Fabric) CubeInstalled(c int) bool {
	return c >= 0 && c < 64 && f.installed[c]
}

// swapCube replaces failed cube old in the named slice with a healthy free
// cube, touching only the circuits that involve the replaced position.
func (f *Fabric) swapCube(name string, old int) (int, error) {
	s := f.slices[name]
	free := f.FreeCubes()
	if len(free) == 0 {
		// No spare: the slice degrades; release nothing, leave the job to
		// the scheduler.
		return -1, fmt.Errorf("%w: slice %q keeps failed cube %d", ErrNoSpareCube, name, old)
	}
	replacement := free[0]

	// Tear down circuits touching the old cube.
	for _, r := range s.Circuits {
		if r.North != old && r.South != old {
			continue
		}
		if err := f.disconnectCircuit(r); err != nil {
			return -1, err
		}
	}

	// Substitute the cube and regenerate the circuit list.
	newCubes := make([]int, len(s.Cubes))
	for i, c := range s.Cubes {
		if c == old {
			newCubes[i] = replacement
		} else {
			newCubes[i] = c
		}
	}
	sl, err := topo.ComposeSlice(s.Shape, newCubes)
	if err != nil {
		return -1, err
	}
	newReqs := sl.RequiredCircuits()

	// Apply only the circuits that involve the replacement (the rest are
	// already in place; Apply treats in-place circuits as no-ops anyway).
	var delta []topo.CircuitReq
	for _, r := range newReqs {
		if r.North == replacement || r.South == replacement {
			delta = append(delta, r)
		}
	}
	if _, err := f.validateBudgets(delta); err != nil {
		return -1, err
	}
	if err := f.applyCircuits(delta); err != nil {
		return -1, err
	}

	f.owner[old] = ""
	f.owner[replacement] = name
	s.Cubes = newCubes
	s.Circuits = newReqs
	if f.metricSwaps != nil {
		f.metricSwaps.Inc()
	}
	return replacement, nil
}

// RepairLink handles a damaged fiber pair: cube's pigtail on OCS o has
// failed (its port drops all circuits), a spare port is allocated from the
// switch's reserved pool ("8 spares for link testing and repairs",
// Appendix A), the cube's fibers are repatched to it, and every affected
// slice circuit is re-validated and re-established on the spare. It
// returns the spare port now carrying the cube's fibers.
func (f *Fabric) RepairLink(o topo.OCSID, cube int) (ocs.PortID, error) {
	if int(o) < 0 || int(o) >= len(f.switches) {
		return 0, fmt.Errorf("core: OCS %d out of range", o)
	}
	if cube < 0 || cube >= 64 || !f.installed[cube] {
		return 0, fmt.Errorf("%w: %d", ErrCubeRange, cube)
	}
	sw := f.switches[o]
	old := f.PortFor(o, cube)
	if _, err := sw.FailPort(old); err != nil {
		return 0, err
	}
	spare, err := sw.SpareFor(old)
	if err != nil {
		return 0, err
	}
	f.portMap[portKey{o, cube}] = spare

	// Re-establish the slice circuits that ran through the failed port.
	var delta []topo.CircuitReq
	for _, s := range f.slices {
		for _, r := range s.Circuits {
			if r.OCS == o && (r.North == cube || r.South == cube) {
				delta = append(delta, r)
			}
		}
	}
	if len(delta) > 0 {
		if _, err := f.validateBudgets(delta); err != nil {
			return spare, err
		}
		if err := f.applyCircuits(delta); err != nil {
			return spare, err
		}
	}
	return spare, nil
}

// ObserveLinkBER feeds one pre-FEC BER measurement for the receive lane of
// cube `north` on OCS o into the fabric's anomaly detection. Readings above
// the KP4 threshold raise a Critical alert immediately; readings far above
// the link's own baseline raise Warnings (the production pattern of §3.2.2
// and Fig 13's monitoring). With Config.AutoRepairLinks set, a Critical
// reading triggers an automatic spare-port link repair.
func (f *Fabric) ObserveLinkBER(o topo.OCSID, north int, ber float64) bool {
	key := fmt.Sprintf("ber/ocs%d/cube%d", o, north)
	det, ok := f.berDetectors[key]
	if !ok {
		sink := f.cfg.Alerts
		det = telemetry.NewDetector(key, sink)
		det.HardLimit = fec.KP4Threshold
		f.berDetectors[key] = det
	}
	anom := det.Observe(ber)
	if anom && ber > fec.KP4Threshold && f.cfg.AutoRepairLinks {
		if int(o) < len(f.switches) && north >= 0 && north < 64 && f.installed[north] {
			// Best effort: repair failures (e.g. spare exhaustion) surface
			// through the alert sink rather than the telemetry path.
			if _, err := f.RepairLink(o, north); err != nil && f.cfg.Alerts != nil {
				f.cfg.Alerts.Post(telemetry.Alert{
					Source:   key,
					Severity: telemetry.Critical,
					Message:  fmt.Sprintf("auto-repair failed: %v", err),
					Value:    ber,
				})
			}
		}
	}
	return anom
}
