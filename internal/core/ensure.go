package core

import (
	"fmt"

	"lightwave/internal/topo"
)

// EnsureSlice drives the fabric toward "slice name exists with this shape on
// these cubes" and reports whether any hardware state changed. It is the
// idempotent primitive the fleet reconciler (internal/fleet) retries after
// partial failures:
//
//   - no such slice: the slice is composed from the given cubes;
//   - slice exists and matches: any circuit torn down out-of-band is
//     re-programmed, otherwise nothing happens;
//   - slice exists with a different shape or cube set: the slice is reshaped
//     in place.
//
// A nil or empty cubes list means "whatever cubes the slice already has" for
// an existing slice; for a new slice it is an error (the caller owns
// placement).
func (f *Fabric) EnsureSlice(name string, shape topo.Shape, cubes []int) (*Slice, bool, error) {
	s, ok := f.slices[name]
	if !ok {
		if len(cubes) == 0 {
			return nil, false, fmt.Errorf("core: ensure %q: no cubes given for a new slice", name)
		}
		ns, err := f.ComposeSlice(name, shape, cubes)
		if err != nil {
			return nil, false, err
		}
		return ns, true, nil
	}
	if s.Shape == shape && (len(cubes) == 0 || equalInts(s.Cubes, cubes)) {
		// Intent already realized; heal any circuit that was disconnected
		// behind the control plane's back.
		var dead []topo.CircuitReq
		for _, r := range s.Circuits {
			if !f.circuitLive(r) {
				dead = append(dead, r)
			}
		}
		if len(dead) == 0 {
			return s, false, nil
		}
		if err := f.applyCircuits(dead); err != nil {
			return nil, false, fmt.Errorf("core: ensure %q: re-programming %d circuits: %w", name, len(dead), err)
		}
		return s, true, nil
	}
	if len(cubes) == 0 {
		cubes = nil // ReshapeSlice's "reuse current cubes"
	}
	ns, err := f.ReshapeSlice(name, shape, cubes)
	if err != nil {
		return nil, false, err
	}
	return ns, true, nil
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
