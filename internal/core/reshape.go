package core

import (
	"fmt"

	"lightwave/internal/topo"
)

// ReshapeSlice changes a running slice's torus shape in place — the "late
// binding after hardware is deployed" capability of §4.2.1 and the §6
// future-work direction of reshaping between training phases. The new
// shape may reuse the slice's cubes (pure reshape), grow onto free cubes,
// or shrink. Circuits shared between the old and new configuration are
// kept untouched; everything else is reprogrammed. Other slices are
// provably undisturbed.
//
// cubes may be nil to reuse the slice's current cube list (the new shape
// must then need exactly that many cubes).
func (f *Fabric) ReshapeSlice(name string, shape topo.Shape, cubes []int) (*Slice, error) {
	s, okSlice := f.slices[name]
	if !okSlice {
		return nil, fmt.Errorf("%w: %q", ErrNoSlice, name)
	}
	if cubes == nil {
		cubes = s.Cubes
	}
	inOld := make(map[int]bool, len(s.Cubes))
	for _, c := range s.Cubes {
		inOld[c] = true
	}
	for _, c := range cubes {
		if c < 0 || c >= 64 {
			return nil, fmt.Errorf("%w: %d", ErrCubeRange, c)
		}
		if !f.installed[c] {
			return nil, fmt.Errorf("%w: %d", ErrNotInstalled, c)
		}
		if !f.healthy[c] {
			return nil, fmt.Errorf("%w: %d", ErrCubeUnhealthy, c)
		}
		if owner := f.owner[c]; owner != "" && owner != name {
			return nil, fmt.Errorf("%w: %d (slice %q)", ErrCubeBusy, c, owner)
		}
	}

	sl, err := topo.ComposeSlice(shape, cubes)
	if err != nil {
		return nil, err
	}
	newReqs := sl.RequiredCircuits()

	// Identify which new circuits are already in place (shared with the
	// old configuration) and which old circuits must go.
	oldSet := make(map[topo.CircuitReq]bool, len(s.Circuits))
	for _, r := range s.Circuits {
		oldSet[r] = true
	}
	var fresh []topo.CircuitReq
	newSet := make(map[topo.CircuitReq]bool, len(newReqs))
	for _, r := range newReqs {
		newSet[r] = true
		if !oldSet[r] {
			fresh = append(fresh, r)
		}
	}

	// Validate budgets for the fresh circuits before touching hardware.
	worst := s.WorstMarginDB
	if len(fresh) > 0 {
		w, err := f.validateBudgets(fresh)
		if err != nil {
			return nil, err
		}
		if w < worst {
			worst = w
		}
	}

	// Tear down stale circuits, then program the fresh ones.
	for _, r := range s.Circuits {
		if newSet[r] {
			continue
		}
		if err := f.disconnectCircuit(r); err != nil {
			return nil, err
		}
	}
	if err := f.applyCircuits(fresh); err != nil {
		return nil, err
	}

	// Ownership bookkeeping.
	for _, c := range s.Cubes {
		f.owner[c] = ""
	}
	for _, c := range cubes {
		f.owner[c] = name
	}
	s.Shape = shape
	s.Cubes = append([]int(nil), cubes...)
	s.Circuits = newReqs
	s.WorstMarginDB = worst
	return s, nil
}
