// Command lwplan prints the physical cabling manifest of a superpod
// (Appendix A / Fig A.1): the pull sheet mapping every cube-face fiber to
// its OCS port, or the incremental runs needed to add one cube (§4.2.3).
//
// Usage:
//
//	lwplan -cubes 64            # full pod manifest
//	lwplan -add 17              # incremental turn-up of cube 17
//	lwplan -cubes 8 -summary    # per-OCS fiber counts only
package main

import (
	"flag"
	"fmt"
	"log"
	"sort"

	"lightwave/internal/topo"
)

func main() {
	cubes := flag.Int("cubes", 64, "installed cube count (1-64)")
	add := flag.Int("add", -1, "print only the incremental runs for this new cube")
	summary := flag.Bool("summary", false, "print per-OCS fiber counts instead of runs")
	flag.Parse()

	if *add >= 0 {
		runs, err := topo.IncrementalRuns(*add)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("# incremental turn-up of cube %d: %d fiber runs, no recabling of existing cubes\n", *add, len(runs))
		for _, r := range runs {
			fmt.Println(r)
		}
		return
	}

	plan, err := topo.CablePlan(*cubes)
	if err != nil {
		log.Fatal(err)
	}
	if err := topo.ValidatePlan(plan); err != nil {
		log.Fatal(err)
	}
	if *summary {
		sum := topo.PlanSummary(plan)
		ids := make([]int, 0, len(sum))
		for o := range sum {
			ids = append(ids, int(o))
		}
		sort.Ints(ids)
		fmt.Printf("# %d cubes, %d fiber runs over %d OCSes\n", *cubes, len(plan), len(ids))
		for _, o := range ids {
			fmt.Printf("ocs%02d: %d fibers\n", o, sum[topo.OCSID(o)])
		}
		return
	}
	fmt.Printf("# cable plan: %d cubes, %d fiber runs (validated)\n", *cubes, len(plan))
	for _, r := range plan {
		fmt.Println(r)
	}
}
