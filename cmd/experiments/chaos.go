package main

import (
	"fmt"

	"lightwave/internal/chaos"
)

// chaosExperiment replays the paper's headline resilience drill — a single
// OCS outage with field repair — against the live fleet reconciler and TE
// loop, measuring the §3.4 claim: losing one of N switches costs a bounded
// ~1/N slice of inter-block capacity, the control plane heals around it
// within a reconcile epoch, and no compute pod is disturbed. The replay is
// deterministic: the same seed produces a byte-identical report at any
// worker count.
func chaosExperiment() {
	cfg := chaos.EvalConfig{
		Scenario:     chaos.SingleOCSOutage(2, 70, 180, 360),
		Blocks:       6,
		Uplinks:      6,
		LoadFraction: 0.9,
		Seed:         7,
	}
	rep, err := chaos.Evaluate(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("drill: OCS 2 fails at t=70s, field-repaired at t=250s (%d blocks x %d uplinks, %.0f%% load)\n",
		cfg.Blocks, cfg.Uplinks, 100*cfg.LoadFraction)
	fmt.Print(rep.Text())
	fmt.Printf("bounded cost: worst epoch kept %.1f%% of fault-free goodput; capacity restored in %.0fs\n",
		100*rep.MinGoodputFraction, rep.CapacityMTTRSeconds)
}
