package main

import (
	"fmt"
	"os"

	"lightwave/internal/chaos"
)

// chaosExperiment replays the paper's headline resilience drill — a single
// OCS outage with field repair — against the live fleet reconciler and TE
// loop, measuring the §3.4 claim: losing one of N switches costs a bounded
// ~1/N slice of inter-block capacity, the control plane heals around it
// within a reconcile epoch, and no compute pod is disturbed. The replay is
// deterministic: the same seed produces a byte-identical report at any
// worker count.
func chaosExperiment() {
	cfg := chaos.EvalConfig{
		Scenario:     chaos.SingleOCSOutage(2, 70, 180, 360),
		Blocks:       6,
		Uplinks:      6,
		LoadFraction: 0.9,
		Seed:         7,
	}
	rep, err := chaos.Evaluate(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("drill: OCS 2 fails at t=70s, field-repaired at t=250s (%d blocks x %d uplinks, %.0f%% load)\n",
		cfg.Blocks, cfg.Uplinks, 100*cfg.LoadFraction)
	fmt.Print(rep.Text())
	fmt.Printf("bounded cost: worst epoch kept %.1f%% of fault-free goodput; capacity restored in %.0fs\n",
		100*rep.MinGoodputFraction, rep.CapacityMTTRSeconds)
}

// crashRestartExperiment runs the durable-state drill: a journaled fleet
// manager churns through seeded intent mutations and pod faults, the
// process dies mid-stream with no shutdown snapshot and a record torn
// mid-write, and a fresh manager recovers from the WAL alone. The claim:
// the recovered intent store is byte-identical to the pre-crash one, and
// reconciliation converges every recovered slice onto fresh backends —
// recovery restores intent, reconciliation restores reality.
func crashRestartExperiment() {
	dir, err := os.MkdirTemp("", "lw-crashrestart-*")
	if err != nil {
		panic(err)
	}
	defer os.RemoveAll(dir)
	rep, err := chaos.EvaluateCrashRestart(chaos.CrashRestartConfig{
		Dir:        dir,
		ChurnSteps: 60,
		Seed:       13,
	})
	if err != nil {
		panic(err)
	}
	fmt.Printf("drill: kill -9 mid-churn after %d mutations, recover from WAL (snapshot + tail + torn record)\n",
		rep.Mutations)
	fmt.Print(rep.Text())
	fmt.Printf("reconverged %d slices in %.3fs wall\n", rep.DesiredSlices, rep.ReconvergeSeconds)
}
