package main

import (
	"fmt"
	"math"
	"strings"

	"lightwave/internal/dsp"
	"lightwave/internal/fec"
	"lightwave/internal/ocs"
	"lightwave/internal/sim"
)

// fig10a samples all cross-connections of one Palomar OCS and prints the
// insertion-loss histogram (paper: typically <2 dB with a splice/connector
// tail).
func fig10a() {
	sw, err := ocs.New(ocs.DefaultConfig())
	if err != nil {
		panic(err)
	}
	h := sim.NewHistogram(0.5, 3.5, 24)
	var s sim.Summary
	for a := 0; a < sw.Radix(); a++ {
		for b := 0; b < sw.Radix(); b++ {
			l := sw.IntrinsicLossDB(ocs.PortID(a), ocs.PortID(b))
			h.Add(l)
			s.Add(l)
		}
	}
	fmt.Printf("connections=%d mean=%.2f dB min=%.2f max=%.2f\n", s.N(), s.Mean(), s.Min(), s.Max())
	peak := 0
	for i := range h.Counts {
		if h.Counts[i] > h.Counts[peak] {
			peak = i
		}
	}
	for i := range h.Counts {
		bar := strings.Repeat("#", h.Counts[i]*50/(h.Counts[peak]+1))
		fmt.Printf("%5.2f dB |%-50s %5.1f%%\n", h.BinCenter(i), bar, 100*h.Fraction(i))
	}
	over2 := 0
	for a := 0; a < sw.Radix(); a++ {
		for b := 0; b < sw.Radix(); b++ {
			if sw.IntrinsicLossDB(ocs.PortID(a), ocs.PortID(b)) > 2 {
				over2++
			}
		}
	}
	fmt.Printf("paths over 2 dB: %.1f%% (paper: 'typically less than 2dB')\n",
		100*float64(over2)/float64(s.N()))
}

// fig10b prints the per-port return loss (paper: typically −46 dB, spec
// < −38 dB).
func fig10b() {
	sw, err := ocs.New(ocs.DefaultConfig())
	if err != nil {
		panic(err)
	}
	var s sim.Summary
	worst := -200.0
	for p := 0; p < sw.Radix(); p++ {
		rl, _ := sw.ReturnLossDB(ocs.PortID(p))
		s.Add(rl)
		if rl > worst {
			worst = rl
		}
		if p%17 == 0 {
			fmt.Printf("port %3d: %.1f dB\n", p, rl)
		}
	}
	fmt.Printf("mean=%.1f dB worst=%.1f dB spec=-38 dB (all ports %v)\n",
		s.Mean(), worst, worst < -38)
}

// fig11a prints the analytic BER curves for several MPI levels with and
// without OIM, plus the sensitivity gain at the KP4 threshold.
func fig11a() {
	r := dsp.DefaultReceiver()
	mpis := []float64{dsp.NoMPI, -35, -32, -29}
	fmt.Printf("%-10s", "P(dBm)")
	for _, m := range mpis {
		label := "clean"
		if m > dsp.NoMPI {
			label = fmt.Sprintf("%gdB", m)
		}
		fmt.Printf(" %12s %12s", label+"/raw", label+"/OIM")
	}
	fmt.Println()
	for p := -13.0; p <= -5; p += 1 {
		fmt.Printf("%-10.1f", p)
		for _, m := range mpis {
			raw := r.BER(p, dsp.MPICondition{MPIDB: m})
			oim := r.BER(p, dsp.MPICondition{MPIDB: m, OIM: true})
			fmt.Printf(" %12.3e %12.3e", raw, oim)
		}
		fmt.Println()
	}
	for _, m := range []float64{-35, -32, -29} {
		raw, err1 := r.Sensitivity(fec.KP4Threshold, dsp.MPICondition{MPIDB: m})
		oim, err2 := r.Sensitivity(fec.KP4Threshold, dsp.MPICondition{MPIDB: m, OIM: true})
		if err1 != nil || err2 != nil {
			fmt.Printf("MPI %g dB: KP4 threshold unreachable without OIM\n", m)
			continue
		}
		fmt.Printf("MPI %g dB: OIM sensitivity gain at 2e-4 = %.2f dB (paper: >1 dB at -32)\n", m, raw-oim)
	}
}

// fig11b compares waveform Monte-Carlo measurements with the analytic
// model (paper: "measured data ... matches well with the modeling
// results").
func fig11b() {
	r := dsp.DefaultReceiver()
	fmt.Printf("%-8s %-8s %12s %12s %8s\n", "P(dBm)", "MPI(dB)", "analytic", "montecarlo", "ratio")
	for _, c := range []struct {
		p, mpi float64
		oim    bool
	}{
		{-12, dsp.NoMPI, false},
		{-11, -32, false},
		{-11, -29, false},
		{-10, -27, true},
	} {
		cond := dsp.MPICondition{MPIDB: c.mpi, OIM: c.oim}
		an := r.BER(c.p, cond)
		mc := r.MonteCarloBER(c.p, cond, dsp.MonteCarloConfig{Symbols: 300000, Rand: sim.NewRand(42)})
		fmt.Printf("%-8.1f %-8.1f %12.3e %12.3e %8.2f\n", c.p, c.mpi, an, mc.BER, mc.BER/an)
	}
}

// fig12 prints the receiver-sensitivity improvement from the concatenated
// soft-decision FEC (paper: 1.6 dB / 45% at the KP4 threshold, MPI −32 dB).
func fig12() {
	r := dsp.DefaultReceiver()
	inner := fec.DefaultInner()
	for _, mpi := range []float64{dsp.NoMPI, -32} {
		cond := dsp.MPICondition{MPIDB: mpi}
		// Without the inner code: power where pre-FEC BER hits the KP4
		// threshold.
		without, err := r.Sensitivity(fec.KP4Threshold, cond)
		if err != nil {
			fmt.Printf("MPI %.0f dB: threshold unreachable\n", mpi)
			continue
		}
		// With the inner code: power where the inner decoder's output hits
		// the KP4 threshold.
		with := bisectPower(func(p float64) float64 {
			return inner.Transfer(r.BER(p, cond))
		}, fec.KP4Threshold)
		gain := without - with
		// The paper quotes the relative power improvement 10^(gain/10)−1
		// (1.6 dB ↔ 45%).
		pct := 100 * (math.Pow(10, gain/10) - 1)
		label := "clean"
		if mpi > dsp.NoMPI {
			label = fmt.Sprintf("MPI %.0f dB", mpi)
		}
		fmt.Printf("%-12s sensitivity: KP4-only %.2f dBm, +inner SFEC %.2f dBm, gain %.2f dB (%.0f%%)\n",
			label, without, with, gain, pct)
	}
	fmt.Println("paper: 1.6 dB (45%) at MPI -32 dB")
}

func bisectPower(berAt func(float64) float64, target float64) float64 {
	lo, hi := -30.0, 5.0
	for i := 0; i < 100; i++ {
		mid := (lo + hi) / 2
		if berAt(mid) > target {
			lo = mid
		} else {
			hi = mid
		}
	}
	return (lo + hi) / 2
}

// fig13 samples the fleet: per-lane BER of every receiving port of a
// 64-cube pod (6144 ports). Installed links are budgeted to run with a
// small designed margin over receiver sensitivity once end-of-life
// allocations (aging, repair splices, temperature) are spent, so the
// observed per-lane BER sits around 1e-6 — "approximately two orders of
// magnitude of BER margin" below the 2e-4 KP4 threshold.
func fig13() {
	rx := dsp.DefaultReceiver()
	clean := dsp.MPICondition{MPIDB: dsp.NoMPI}
	sens, err := rx.Sensitivity(fec.KP4Threshold, clean)
	if err != nil {
		panic(err)
	}
	// 64 cubes × 96 link endpoints = 6144 receiving ports, each with its
	// own residual link margin and MPI level; the sampler shards the fleet
	// across the worker pool.
	cfg := dsp.DefaultFleetBERConfig()
	cfg.SensitivityDBm = sens
	res := rx.FleetBER(cfg)
	var s sim.Summary
	for _, ber := range res.BERs {
		s.Add(math.Log10(ber))
	}
	over := res.OverThreshold(fec.KP4Threshold)
	fmt.Printf("ports=%d  median log10(BER)=%.2f  worst BER=%.2e  KP4 threshold=2.0e-04\n",
		len(res.BERs), s.Mean(), res.Worst)
	fmt.Printf("ports above threshold: %d; worst-case margin below threshold: %.1f decades (paper: ≈2)\n",
		over, math.Log10(fec.KP4Threshold/res.Worst))
}
