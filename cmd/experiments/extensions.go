package main

import (
	"fmt"

	"lightwave/internal/dcn"
	"lightwave/internal/dsp"
	"lightwave/internal/mlperf"
	"lightwave/internal/ocs"
	"lightwave/internal/optics"
	"lightwave/internal/sched"
	"lightwave/internal/sim"
	"lightwave/internal/topo"
)

// reliabilityExperiment reproduces the §4.1.1 field-availability claim with
// the lifetime simulation.
func reliabilityExperiment() {
	p := ocs.DefaultReliability()
	av, err := ocs.FleetAvailability(p, 10, 60, sim.NewRand(1))
	if err != nil {
		panic(err)
	}
	fmt.Printf("fleet of 60 chassis, 10-year lifetimes: mean availability %.4f%%\n", 100*av)
	fmt.Println("paper: 'greater than 99.98% availability in the field'")
	rep, err := ocs.SimulateLifetime(p, 20, sim.NewRand(2))
	if err != nil {
		panic(err)
	}
	fmt.Printf("one 20-year chassis: downtime %.1f h, %d FRU replacements, %d driver-board failures, %d mirror failures, %d ports lost\n",
		rep.DowntimeHours, rep.FRUReplaced, rep.DriverFailures, rep.MirrorFailures, rep.PortsLost)
}

// circulatorExperiment runs the Appendix B Jones-calculus physics.
func circulatorExperiment() {
	core := optics.NewCirculatorCore()
	toPort2, leakFwd := core.RouteForward(optics.Jones{P: 1})
	fmt.Printf("port 1→2 (Tx launch): %.4f transmitted, %.2g leaked\n", toPort2, leakFwd)
	toPort3, back := core.RouteBackward(optics.Jones{S: complex(0.6, 0.2), P: complex(0.3, 0.7)})
	total := toPort3 + back
	fmt.Printf("port 2→3 (fiber return, random polarization): %.4f to receiver, %.2g back into laser\n",
		toPort3/total, back/total)
	for _, err := range []float64{0.005, 0.02, 0.05} {
		fmt.Printf("Faraday rotation error %.3f rad -> isolation %.1f dB\n",
			err, optics.CirculatorIsolationDB(err))
	}
	fmt.Println("Appendix B: forward polarization preserved; return rotated 90° to port 3")
}

// wdmExperiment prints per-lane budgets for the CWDM8 module, showing the
// band-edge dispersion penalty the MLSE equalizer targets.
func wdmExperiment() {
	gen, err := optics.GenerationByName("800G-bidi-CWDM8")
	if err != nil {
		panic(err)
	}
	a, b := optics.NewTransceiver(gen), optics.NewTransceiver(gen)
	// 1 km pod-scale reach: the band-edge lanes lose most of their margin
	// to dispersion and the MLSE equalizer recovers it (§3.3.1).
	link := optics.NewBidiLink(a, b, optics.DefaultCirculator(), 1.8, -46, 1.0)
	lanes, err := optics.WDMBudget(link, a, optics.NewMux(gen.Grid))
	if err != nil {
		panic(err)
	}
	eq := dsp.DefaultEqualizer()
	fmt.Printf("%-6s %-8s %-9s %-12s %-11s %-12s\n",
		"lane", "λ(nm)", "Rx(dBm)", "dispPen(dB)", "margin(dB)", "eq-margin(dB)")
	for _, l := range lanes {
		eqMargin := l.MarginDB + l.DispersionPenaltyDB - eq.ResidualPenaltyDB(l.DispersionPenaltyDB)
		fmt.Printf("%-6d %-8.0f %-9.2f %-12.2f %-11.2f %-12.2f\n",
			l.Lane, l.LambdaNM, l.RxPowerDBm, l.DispersionPenaltyDB, l.MarginDB, eqMargin)
	}
	worst, _ := optics.WorstLane(lanes)
	fmt.Printf("worst lane %d (%.0f nm): raw margin %.2f dB, %.2f dB with MLSE equalization\n",
		worst.Lane, worst.LambdaNM, worst.MarginDB,
		worst.MarginDB+worst.DispersionPenaltyDB-eq.ResidualPenaltyDB(worst.DispersionPenaltyDB))
	shared := optics.SharedChannels(optics.CWDM8(), optics.CWDM4())
	fmt.Printf("CWDM8↔CWDM4 interop channels: %v\n", shared)
}

// defragExperiment quantifies §4.2.4's defragmentation point.
func defragExperiment() {
	mix := sched.ProductionMix()
	cfg := sched.ReferenceConfig()
	cfg.Duration = 150000

	reconf, err := sched.Simulate(sched.FullPod(), sched.Reconfigurable{}, mix, cfg)
	if err != nil {
		panic(err)
	}
	plain, err := sched.Simulate(sched.FullPod(), sched.Contiguous{}, mix, cfg)
	if err != nil {
		panic(err)
	}
	migrations := 0
	defrag, err := sched.Simulate(sched.FullPod(), sched.ContiguousWithDefrag{Migrations: &migrations}, mix, cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("reconfigurable:       utilization %.3f, migrations 0\n", reconf.Utilization)
	fmt.Printf("contiguous:           utilization %.3f\n", plain.Utilization)
	fmt.Printf("contiguous + defrag:  utilization %.3f, %d cube migrations paid\n",
		defrag.Utilization, migrations)
	fmt.Println("the reconfigurable fabric gets the best utilization with zero job migration")
}

// scaleoutExperiment runs the §2.2.2 hybrid multi-pod model.
func scaleoutExperiment() {
	sys := mlperf.DefaultSystem()
	m := mlperf.LLM0()
	m.GlobalBatch = 16384
	for _, pods := range []int{1, 2, 4, 8} {
		cfg := mlperf.MultiPodConfig{
			Pods:        pods,
			ShapePerPod: topo.Shape{X: 8, Y: 16, Z: 32},
			CrossPod:    mlperf.DefaultCrossPod(),
		}
		mm := m
		mm.GlobalBatch = m.GlobalBatch / 4 * float64(pods) // fixed per-pod batch
		step, err := sys.StepTimeMultiPod(mm, cfg)
		if err != nil {
			panic(err)
		}
		eff := 1.0
		if pods > 1 {
			eff, err = sys.ScaleOutEfficiency(mm, cfg)
			if err != nil {
				panic(err)
			}
		}
		fmt.Printf("%d pod(s) × 4096 chips: step %.2f s (cross-pod DP %.1f ms), weak-scaling efficiency %.1f%%\n",
			pods, step.Total, 1e3*step.CrossPodDP, 100*eff)
	}
}

// refreshExperiment runs the §2.1 rapid-technology-refresh trajectory:
// blocks upgraded one at a time from 100G to 400G modules on a live fabric.
func refreshExperiment() {
	old, err := optics.GenerationByName("100G-CWDM4")
	if err != nil {
		panic(err)
	}
	neu, err := optics.GenerationByName("2x400G-bidi-CWDM4")
	if err != nil {
		panic(err)
	}
	steps, err := dcn.TechRefresh(8, 14, old, neu, 50e9)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-10s %-16s %-16s\n", "upgraded", "capacity(Tbps)", "delivered(Tbps)")
	for _, s := range steps {
		fmt.Printf("%-10d %-16.2f %-16.2f\n", s.Upgraded, 8*s.CapacityBps/1e12, 8*s.AchievedBps/1e12)
	}
	fmt.Println("every step interoperates; capacity and delivery never regress (§2.1)")
}

// campusExperiment runs the shifting-services campus loop (§1's third use
// case): per-epoch re-engineering with incremental reprogramming.
func campusExperiment() {
	clusters, epochs := 10, 12
	cfg := dcn.CampusConfig{
		Clusters: clusters,
		Uplinks:  14,
		Switches: 22,
		Epochs:   epochs,
		BaseBps:  0.5e9,
		Services: dcn.RandomServices(20, clusters, epochs, 150e9, 7),
		TrunkBps: 12.5e9,
		Seed:     1,
	}
	eps, err := dcn.RunCampus(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-6s %-9s %-7s %-6s %-14s %-14s %-14s\n",
		"epoch", "services", "churn", "kept", "offered(Tbps)", "TE(Tbps)", "static(Tbps)")
	var teSum, stSum float64
	for _, e := range eps {
		fmt.Printf("%-6d %-9d %-7d %-6d %-14.2f %-14.2f %-14.2f\n",
			e.Epoch, e.ActiveServices, e.Churn, e.Kept,
			8*e.OfferedBps/1e12, 8*e.AchievedBps/1e12, 8*e.StaticAchievedBps/1e12)
		teSum += e.AchievedBps
		stSum += e.StaticAchievedBps
	}
	fmt.Printf("cumulative delivery: engineered %.2fx the static mesh\n", teSum/stSum)
}
