package main

import (
	"fmt"

	"lightwave/internal/avail"
	"lightwave/internal/collective"
	"lightwave/internal/cost"
	"lightwave/internal/dcn"
	"lightwave/internal/mlperf"
	"lightwave/internal/optics"
	"lightwave/internal/superpod"
)

// table1 prints the pod fabric cost/power comparison.
func table1() {
	fmt.Printf("%-20s %-14s %-14s\n", "Fabric", "RelativeCost", "RelativePower")
	for _, r := range cost.Table1() {
		fmt.Printf("%-20s %-14.2f %-14.2f\n", r.Fabric, r.RelativeCost, r.RelativePower)
	}
	fmt.Printf("paper: DCN 1.24/1.10, Lightwave 1.06/1.01, Static 1/1\n")
	fmt.Printf("lightwave fabric premium over static: %.1f%% of system cost (paper: <6%%)\n",
		100*cost.IncrementalFabricShare())
}

// table2 prints the LLM slice-shape optimization results.
func table2() {
	results, err := mlperf.Table2(mlperf.DefaultSystem())
	if err != nil {
		panic(err)
	}
	fmt.Printf("%-6s %-10s %-14s %-10s\n", "Model", "Params", "OptimalShape", "Speedup")
	for _, r := range results {
		fmt.Printf("%-6s %-10s %-14s %-10s\n",
			r.Model.Name, fmt.Sprintf("%.0fB", r.Model.Params/1e9),
			r.Best.Shape.String(), fmt.Sprintf("%.2fx", r.Speedup))
	}
	fmt.Println("paper: LLM0 8x16x32 1.54x, LLM1 4x4x256 3.32x, LLM2 16x16x16 1x")
}

// fig15a prints fabric availability versus per-OCS availability for the
// three transceiver options.
func fig15a() {
	options := []struct {
		gen string
	}{{"200G-CWDM4"}, {"2x200G-bidi-CWDM4"}, {"800G-bidi-CWDM8"}}
	fmt.Printf("%-12s", "OCS avail")
	counts := make([]int, len(options))
	for i, o := range options {
		g, err := optics.GenerationByName(o.gen)
		if err != nil {
			panic(err)
		}
		n, err := avail.OCSCount(g)
		if err != nil {
			panic(err)
		}
		counts[i] = n
		fmt.Printf(" %20s", fmt.Sprintf("%s(%d OCS)", g.Grid.Name+map[bool]string{true: "-bidi", false: "-dup"}[g.Bidi], n))
	}
	fmt.Println()
	for _, a := range []float64{0.995, 0.997, 0.999, 0.9995, 0.9999} {
		fmt.Printf("%-12.4f", a)
		for _, n := range counts {
			fmt.Printf(" %20.3f", avail.FabricAvailability(a, n))
		}
		fmt.Println()
	}
	fmt.Println("paper at 0.999: duplex 90%, CWDM4 bidi 95%, CWDM8 bidi 98%")
}

// fig15b prints goodput versus slice size for static and reconfigurable
// fabrics at three server availabilities.
func fig15b() {
	avails := []float64{0.99, 0.995, 0.999}
	ks := []int{1, 2, 4, 8, 16, 32}
	pts := avail.GoodputSurface(avails, ks)
	// Row-major (avail, k) grid → index a*len(ks)+i.
	fmt.Printf("%-12s %-8s", "slice(TPUs)", "cubes")
	for _, a := range avails {
		fmt.Printf(" %10s %10s", fmt.Sprintf("st@%.3f", a), fmt.Sprintf("re@%.3f", a))
	}
	fmt.Println()
	for i, k := range ks {
		fmt.Printf("%-12d %-8d", k*64, k)
		for ai := range avails {
			pt := pts[ai*len(ks)+i]
			fmt.Printf(" %10.2f %10.2f", pt.Static, pt.Reconfigurable)
		}
		fmt.Println()
	}
	fmt.Println("paper at 99.9%, 1024-TPU slice: static 25%, reconfigurable 75%; 2048: 50% for all")
}

// dcnExperiment prints the spine-free savings and the topology-engineering
// flow-level comparison.
func dcnExperiment() {
	capex, power := cost.DefaultDCN().DCNSavings()
	fmt.Printf("spine-free DCN: capex savings %.1f%% (paper ≈30%%), power savings %.1f%% (paper ≈41%%)\n",
		100*capex, 100*power)
	cmp, err := dcn.CompareTopologies(dcn.ReferenceExperiment())
	if err != nil {
		panic(err)
	}
	fmt.Printf("topology engineering vs uniform mesh (skewed long-lived TM):\n")
	fmt.Printf("  mean FCT improvement: %.1f%% (paper ≈10%%)\n", 100*cmp.FCTImprovement)
	fmt.Printf("  saturation throughput gain: %.1f%% (paper ≈30%% TCP throughput)\n", 100*cmp.ThroughputGain)
	fmt.Printf("  uniform %.2f Tbps vs engineered %.2f Tbps delivered\n",
		cmp.UniformBps/1e12, cmp.EngineeredBps/1e12)
}

// deployExperiment prints the OCS counts per transceiver option and the
// bidi cost savings.
func deployExperiment() {
	for _, name := range []string{"200G-CWDM4", "2x200G-bidi-CWDM4", "800G-bidi-CWDM8"} {
		g, err := optics.GenerationByName(name)
		if err != nil {
			panic(err)
		}
		n, err := avail.OCSCount(g)
		if err != nil {
			panic(err)
		}
		fmt.Printf("%-20s -> %d OCSes\n", name, n)
	}
	fmt.Printf("bidi OCS+fiber plant savings: %.0f%% (paper: 50%%)\n", 100*cost.OCSSavingsFromBidi())
}

// schedExperiment reproduces the §4.2.4 utilization comparison live: the
// same deterministic job/fault stream replayed under all three placement
// policies, each against real core.Fabric pods behind a fleet.Manager
// (failures injected through the chaos seams, slices realized by the
// reconciler). The offline sched.Simulate fast path is covered by the
// defrag experiment; this one exercises the full control plane.
func schedExperiment() {
	rep, err := superpod.Evaluate(superpod.EvalConfig{
		Pods:                2,
		CubesPerPod:         64,
		HorizonSeconds:      12000,
		WarmupSeconds:       2000,
		CubeMTBF:            200000, // a few cube failures per pod over the run
		MeanRepairSeconds:   1800,
		PodLossAtSeconds:    5000,
		PodRestoreAtSeconds: 6000,
		Seed:                5,
	})
	if err != nil {
		panic(err)
	}
	fmt.Print(rep.Text())
	reconf, contig := rep.Policies[0], rep.Policies[1]
	fmt.Printf("reconfigurable fleet utilization: %.1f%% (paper: >98%%)\n", 100*reconf.Stats.Utilization)
	if reconf.Stats.Utilization <= 0.98 {
		panic(fmt.Sprintf("reconfigurable utilization %.4f not above the paper's 0.98", reconf.Stats.Utilization))
	}
	if reconf.Stats.Utilization <= contig.Stats.Utilization {
		panic(fmt.Sprintf("reconfigurable %.4f not above contiguous %.4f",
			reconf.Stats.Utilization, contig.Stats.Utilization))
	}
}

// fig2Experiment prints the hybrid ICI-DCN collective timing, including a
// contended-DCN scenario (the inter-pod paths shared with other traffic)
// where the cross-pod phase dominates — the situation §2.2.2 describes as
// "still on the critical path" and the motivation for co-optimizing DCN
// topology with job placement.
func fig2Experiment() {
	dedicated := collective.DCNLink()
	contended := collective.Link{BandwidthBps: dedicated.BandwidthBps / 16, LatencySec: dedicated.LatencySec}
	for _, sc := range []struct {
		name string
		link collective.Link
	}{{"dedicated DCN paths", dedicated}, {"contended DCN (1/16 share)", contended}} {
		h := collective.Hierarchical{
			Pods:     4,
			PodTorus: collective.Torus{Dims: []int{16, 16, 16}, Link: collective.ICILink()},
			DCN:      sc.link,
		}
		fmt.Printf("%s:\n", sc.name)
		for _, mb := range []float64{64, 256, 1024} {
			s := mb * 1e6
			t, err := h.AllReduceTime(s)
			if err != nil {
				panic(err)
			}
			f, _ := h.DCNFraction(s)
			fmt.Printf("  all-reduce %5.0f MB/chip across 4 pods: %6.1f ms (%4.1f%% on DCN)\n",
				mb, 1e3*t, 100*f)
		}
		sp, _ := h.SpeedupFromDCNTE(256e6, 4)
		fmt.Printf("  4x inter-pod trunks via DCN topology engineering -> %.2fx end-to-end speedup\n", sp)
	}
}

// tableC1 prints the OCS technology comparison.
func tableC1() {
	fmt.Printf("%-14s %-8s %-10s %-12s %-10s %-8s\n",
		"Technology", "Cost", "Ports", "Switching", "Loss(dB)", "Latching")
	for _, t := range cost.Technologies() {
		fmt.Printf("%-14s %-8s %-10d %-12.2g %-10.1f %-8v\n",
			t.Name, t.RelativeCost, t.MaxPortCount, t.SwitchingTime, t.InsertionLossDB, t.Latching)
	}
	sel := cost.SelectTechnology(cost.SuperpodRequirement())
	if len(sel) > 0 {
		fmt.Printf("selected for the superpod requirement: %s (paper: MEMS)\n", sel[0].Name)
	}
}
