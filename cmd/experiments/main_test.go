package main

import "testing"

// Smoke tests: every experiment must run to completion (they panic on
// internal errors). The heavyweight simulations are skipped in -short
// mode.

func TestFastExperiments(t *testing.T) {
	for _, fn := range []struct {
		name string
		run  func()
	}{
		{"fig10a", fig10a},
		{"fig10b", fig10b},
		{"fig11a", fig11a},
		{"fig12", fig12},
		{"fig13", fig13},
		{"table1", table1},
		{"table2", table2},
		{"fig15a", fig15a},
		{"fig15b", fig15b},
		{"deploy", deployExperiment},
		{"fig2", fig2Experiment},
		{"tablec1", tableC1},
		{"circulator", circulatorExperiment},
		{"wdm", wdmExperiment},
		{"reliability", reliabilityExperiment},
		{"scaleout", scaleoutExperiment},
		{"refresh", refreshExperiment},
		{"campus", campusExperiment},
	} {
		fn := fn
		t.Run(fn.name, func(t *testing.T) { fn.run() })
	}
}

func TestSlowExperiments(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping heavyweight experiments in -short mode")
	}
	for _, fn := range []struct {
		name string
		run  func()
	}{
		{"fig11b", fig11b},
		{"dcn", dcnExperiment},
		{"sched", schedExperiment},
		{"defrag", defragExperiment},
	} {
		fn := fn
		t.Run(fn.name, func(t *testing.T) { fn.run() })
	}
}
