package main

import (
	"fmt"

	"lightwave/internal/te"
)

// teExperiment replays a diurnal/bursty load trace through the flow
// simulator under three topology policies — static uniform mesh, per-epoch
// oracle, and the online TE loop — the §2.1/§4 claim that traffic-aware
// topology engineering recovers most of the oracle's gain while staging
// every reconfiguration above a capacity floor.
func teExperiment() {
	cfg := te.EvalConfig{
		Trace: te.TraceConfig{
			Blocks: 8, Epochs: 24,
			BaseBps:             1,
			NumServices:         8,
			ServiceMeanBps:      60,
			ServiceMinEpochs:    12,
			DiurnalAmplitude:    0.3,
			DiurnalPeriodEpochs: 24,
			BurstProb:           0.25,
			Seed:                42,
		},
		Uplinks:        14,
		TrunkBps:       50e9,
		LoadFraction:   0.9,
		EpochSeconds:   60,
		SimSeconds:     1,
		MeanFlowBytes:  2e9,
		CooldownEpochs: 2,
		Predictor:      te.PredictorConfig{Warmup: 2},
		Seed:           7,
	}
	res, err := te.Evaluate(cfg)
	if err != nil {
		panic(err)
	}
	fmt.Printf("replayed %d epochs on %d blocks x %d uplinks (peak load %.0f%% of fabric capacity)\n",
		cfg.Trace.Epochs, cfg.Trace.Blocks, cfg.Uplinks, 100*cfg.LoadFraction)
	fmt.Printf("%-8s %14s %14s %10s\n", "policy", "mean Gbps", "effective Gbps", "mean FCT")
	for _, s := range []te.ScenarioResult{res.Static, res.Oracle, res.Online} {
		fmt.Printf("%-8s %14.1f %14.1f %9.3fs\n",
			s.Name, s.MeanBps/1e9, s.EffectiveBps/1e9, s.MeanFCT)
	}
	fmt.Printf("online gain over static: %+.1f%% (oracle bound %+.1f%%)\n",
		100*res.OnlineGain, 100*res.OracleGain)
	fmt.Printf("loop: %d reconfigs / %d epochs, %d stages, %d trunks moved, pred error %.3f\n",
		res.Loop.Reconfigs, res.Loop.Epoch, res.Loop.Stages, res.Loop.TrunksMoved, res.Loop.LastPredictionError)
	fmt.Printf("capacity floor held: min residual %.3f (floor 0.75), %.3g bps-seconds drained\n",
		res.MinResidualFraction, res.Loop.DrainedCapacityBpsSeconds)
}
