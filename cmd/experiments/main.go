// Command experiments regenerates every table and figure of the paper's
// evaluation from the simulation substrates, printing the same rows/series
// the paper reports. Run with -list to see experiment names and -only to
// run a subset; EXPERIMENTS.md records one full run against the paper's
// numbers.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
)

type experiment struct {
	name string
	desc string
	run  func()
}

func main() {
	list := flag.Bool("list", false, "list experiments and exit")
	only := flag.String("only", "", "comma-separated experiment names to run")
	flag.Parse()

	exps := []experiment{
		{"fig10a", "OCS insertion-loss histogram", fig10a},
		{"fig10b", "OCS return loss vs port", fig10b},
		{"fig11a", "analytic BER vs power with/without OIM", fig11a},
		{"fig11b", "Monte-Carlo BER vs analytic model", fig11b},
		{"fig12", "concatenated SFEC sensitivity improvement", fig12},
		{"fig13", "fleet per-lane BER distribution", fig13},
		{"table1", "pod fabric cost/power comparison", table1},
		{"table2", "LLM slice optimization speedups", table2},
		{"fig15a", "fabric availability vs OCS availability", fig15a},
		{"fig15b", "goodput vs slice size", fig15b},
		{"dcn", "spine-free DCN savings and topology engineering", dcnExperiment},
		{"deploy", "deployment modularity and bidi savings", deployExperiment},
		{"sched", "live fleet-integrated scheduler utilization comparison", schedExperiment},
		{"fig2", "hybrid ICI-DCN collective", fig2Experiment},
		{"tablec1", "OCS technology comparison", tableC1},
		{"reliability", "OCS lifetime and field availability", reliabilityExperiment},
		{"circulator", "Appendix B Jones-calculus circulator physics", circulatorExperiment},
		{"wdm", "per-lane CWDM8 budgets and interop", wdmExperiment},
		{"defrag", "defragmentation vs reconfigurability", defragExperiment},
		{"scaleout", "multi-pod hybrid ICI-DCN training", scaleoutExperiment},
		{"refresh", "in-service technology refresh trajectory", refreshExperiment},
		{"campus", "campus fabric with shifting services", campusExperiment},
		{"te", "online traffic-aware topology engineering loop", teExperiment},
		{"chaos", "single-OCS-outage resilience drill", chaosExperiment},
		{"crashrestart", "WAL crash-restart recovery drill", crashRestartExperiment},
	}

	if *list {
		for _, e := range exps {
			fmt.Printf("%-8s %s\n", e.name, e.desc)
		}
		return
	}
	want := map[string]bool{}
	if *only != "" {
		for _, n := range strings.Split(*only, ",") {
			want[strings.TrimSpace(n)] = true
		}
	}
	ran := 0
	for _, e := range exps {
		if len(want) > 0 && !want[e.name] {
			continue
		}
		fmt.Printf("==== %s: %s ====\n", e.name, e.desc)
		e.run()
		fmt.Println()
		ran++
	}
	if ran == 0 {
		fmt.Fprintln(os.Stderr, "no experiments matched -only; use -list")
		os.Exit(1)
	}
}
