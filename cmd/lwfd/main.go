// Command lwfd is the lightwave fabric daemon: it owns a simulated superpod
// fabric (48 Palomar OCSes plus the cube inventory) and serves the ctlrpc
// control protocol on a TCP address for cmd/lwfctl and other tooling.
//
// Usage:
//
//	lwfd -addr 127.0.0.1:7600 -cubes 64 [-metrics-addr 127.0.0.1:7680]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"lightwave/internal/core"
	"lightwave/internal/ctlrpc"
	"lightwave/internal/dcn"
	"lightwave/internal/par"
	"lightwave/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7600", "listen address")
	cubes := flag.Int("cubes", 64, "installed elemental cubes (1-64)")
	transceiver := flag.String("transceiver", "2x200G-bidi-CWDM4", "transceiver generation")
	metricsAddr := flag.String("metrics-addr", "", "HTTP /metrics and /debug/pprof listen address (disabled when empty)")
	flag.Parse()

	if err := run(*addr, *metricsAddr, *cubes, *transceiver); err != nil {
		log.Fatal(err)
	}
}

func run(addr, metricsAddr string, cubes int, transceiver string) error {
	cfg := core.DefaultConfig(cubes)
	if transceiver != cfg.Transceiver.Name {
		gen, err := generationByName(transceiver)
		if err != nil {
			return err
		}
		cfg.Transceiver = gen
	}
	cfg.Metrics = telemetry.NewRegistry()
	// Any simulation work the daemon runs (Monte Carlo sizing, sweeps,
	// flow-level DCN runs) reports its par_* and dcn_flowsim_* counters
	// alongside the fabric metrics.
	par.SetRegistry(cfg.Metrics)
	dcn.SetRegistry(cfg.Metrics)
	cfg.Alerts = telemetry.SinkFunc(func(a telemetry.Alert) {
		log.Printf("ALERT [%s] %s: %s", a.Severity, a.Source, a.Message)
	})

	fabric, err := core.New(cfg)
	if err != nil {
		return fmt.Errorf("building fabric: %w", err)
	}

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("lwfd: %d cubes, %s modules, serving on %s", cubes, cfg.Transceiver.Name, lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if metricsAddr != "" {
		mlis, err := cfg.Metrics.ServeMetrics(ctx, metricsAddr)
		if err != nil {
			return err
		}
		log.Printf("lwfd: metrics on http://%s/metrics", mlis.Addr())
	}
	return ctlrpc.NewServer(fabric).Serve(ctx, lis)
}
