// Command lwfd is the lightwave fabric daemon: it owns a simulated superpod
// fabric (48 Palomar OCSes plus the cube inventory) and serves the ctlrpc
// control protocol on a TCP address for cmd/lwfctl and other tooling.
//
// It can additionally run the online topology-engineering loop
// (internal/te) over a simulated DCN fabric, reprogramming inter-block
// trunks as the synthetic offered load shifts; -te-epoch enables it and
// `lwfctl te status` inspects it.
//
// With -state-dir the daemon journals every successfully executed
// mutating command (compose, destroy, ensure, reshape, cube and link
// maintenance) to a write-ahead log (internal/wal) before the response is
// written, and snapshots the fabric as a replayable command list. On
// restart it re-executes the snapshot plus the journaled tail against a
// freshly built fabric, reproducing slices and cube state. Without the
// flag nothing touches disk and behavior is unchanged.
//
// Usage:
//
//	lwfd -addr 127.0.0.1:7600 -cubes 64 [-metrics-addr 127.0.0.1:7680] [-te-epoch 2s] [-chaos] [-state-dir /var/lib/lwfd]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"sync"
	"syscall"
	"time"

	"lightwave/internal/chaos"
	"lightwave/internal/core"
	"lightwave/internal/ctlrpc"
	"lightwave/internal/dcn"
	"lightwave/internal/ocs"
	"lightwave/internal/par"
	"lightwave/internal/te"
	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
	"lightwave/internal/wal"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7600", "listen address")
	cubes := flag.Int("cubes", 64, "installed elemental cubes (1-64)")
	transceiver := flag.String("transceiver", "2x200G-bidi-CWDM4", "transceiver generation")
	metricsAddr := flag.String("metrics-addr", "", "HTTP /metrics and /debug/pprof listen address (disabled when empty)")
	teEpoch := flag.Duration("te-epoch", 0, "topology-engineering epoch length (0 disables the TE loop)")
	teBlocks := flag.Int("te-blocks", 8, "aggregation blocks in the TE loop's DCN fabric")
	teUplinks := flag.Int("te-uplinks", 14, "uplinks per block in the TE loop's DCN fabric")
	chaosOn := flag.Bool("chaos", false, "enable fault injection (ber-degrade via chaos-inject)")
	stateDir := flag.String("state-dir", "", "durable-state directory: WAL + snapshots with crash recovery (disabled when empty)")
	stateSnapshotEvery := flag.Duration("state-snapshot", time.Minute, "periodic snapshot + log compaction interval (0 snapshots only on shutdown)")
	flag.Parse()

	if err := validateFlags(*cubes, *transceiver, *teEpoch, *teBlocks, *teUplinks, *stateSnapshotEvery); err != nil {
		log.Fatalf("lwfd: %v", err)
	}
	if err := run(*addr, *metricsAddr, *cubes, *transceiver, *teEpoch, *teBlocks, *teUplinks, *chaosOn, *stateDir, *stateSnapshotEvery); err != nil {
		log.Fatal(err)
	}
}

// validateFlags rejects nonsense flag values up front with a one-line
// error instead of a late failure deep in construction.
func validateFlags(cubes int, transceiver string, teEpoch time.Duration, teBlocks, teUplinks int, snapEvery time.Duration) error {
	if cubes < 1 || cubes > 64 {
		return fmt.Errorf("-cubes must be in 1-64, got %d", cubes)
	}
	if _, err := generationByName(transceiver); err != nil {
		return fmt.Errorf("-transceiver: %v", err)
	}
	if teEpoch < 0 {
		return fmt.Errorf("-te-epoch must not be negative, got %s", teEpoch)
	}
	if teEpoch > 0 && (teBlocks < 2 || teUplinks < 1) {
		return fmt.Errorf("-te-blocks/-te-uplinks must be at least 2/1, got %d/%d", teBlocks, teUplinks)
	}
	if snapEvery < 0 {
		return fmt.Errorf("-state-snapshot must not be negative, got %s", snapEvery)
	}
	return nil
}

// fabricChaos adapts the single-fabric daemon to the chaos RPCs. The only
// fault kind it supports is ber-degrade: samples ride the fabric's own
// link-BER path (per-link detector, alerts, auto link repair). Pod and
// OCS faults belong to the fleet daemon's injector.
type fabricChaos struct {
	mu        sync.Mutex
	fabric    *core.Fabric
	cInjected *telemetry.Counter
	injected  int
	lastFault string
}

func (p *fabricChaos) ChaosInject(params ctlrpc.ChaosInjectParams) (ctlrpc.ChaosInjectResult, error) {
	if params.Kind != string(chaos.KindBERDegrade) {
		return ctlrpc.ChaosInjectResult{}, fmt.Errorf(
			"lwfd: only %s injection is supported on the fabric daemon; use lwfleetd -chaos for fleet faults",
			chaos.KindBERDegrade)
	}
	if params.BER <= 0 || params.BER >= 1 {
		return ctlrpc.ChaosInjectResult{}, fmt.Errorf("lwfd: ber-degrade needs 0 < ber < 1, got %g", params.BER)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	anom := p.fabric.ObserveLinkBER(topo.OCSID(params.OCS), params.Port, params.BER)
	p.injected++
	p.cInjected.Inc()
	p.lastFault = fmt.Sprintf("ber-degrade ocs=%d port=%d ber=%.3g anomalous=%t",
		params.OCS, params.Port, params.BER, anom)
	return ctlrpc.ChaosInjectResult{Applied: p.lastFault}, nil
}

func (p *fabricChaos) ChaosStatus() ctlrpc.ChaosStatusResult {
	p.mu.Lock()
	defer p.mu.Unlock()
	return ctlrpc.ChaosStatusResult{
		Enabled:       true,
		InjectedTotal: p.injected,
		LastFault:     p.lastFault,
	}
}

// startTE builds the DCN fabric + TE loop and ticks it in the background
// until ctx cancels, returning the loop for status serving. The returned
// channel closes when the loop goroutine has fully stopped.
func startTE(ctx context.Context, epoch time.Duration, blocks, uplinks int) (*te.Loop, chan struct{}, error) {
	fabric, err := dcn.NewFabric(blocks, uplinks+2, ocs.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	runner, err := te.NewRunner(te.RunnerConfig{
		Loop: te.Config{
			Blocks: blocks, Uplinks: uplinks, TrunkBps: 50e9,
			EpochSeconds: epoch.Seconds(),
			Applier:      &te.FabricApplier{F: fabric},
		},
		Interval: epoch,
		OnStep: func(e int, plan *te.Plan) {
			if plan.Reconfigure {
				log.Printf("lwfd: te epoch %d: reconfigured in %d stages (gain %.3f, %.2fs, min residual %.2f)",
					e, len(plan.Stages), plan.PredictedGain, plan.Seconds, plan.MinResidualFraction)
			}
		},
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := fabric.Program(runner.Loop().Current()); err != nil {
		return nil, nil, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := runner.Run(ctx); err != nil {
			log.Printf("lwfd: te loop stopped: %v", err)
		}
	}()
	return runner.Loop(), done, nil
}

func run(addr, metricsAddr string, cubes int, transceiver string, teEpoch time.Duration, teBlocks, teUplinks int, chaosOn bool, stateDir string, stateSnapshotEvery time.Duration) error {
	cfg := core.DefaultConfig(cubes)
	if transceiver != cfg.Transceiver.Name {
		gen, err := generationByName(transceiver)
		if err != nil {
			return err
		}
		cfg.Transceiver = gen
	}
	cfg.Metrics = telemetry.NewRegistry()
	// Any simulation work the daemon runs (Monte Carlo sizing, sweeps,
	// flow-level DCN runs) reports its par_* and dcn_flowsim_* counters
	// alongside the fabric metrics.
	par.SetRegistry(cfg.Metrics)
	dcn.SetRegistry(cfg.Metrics)
	te.SetRegistry(cfg.Metrics)
	chaos.SetRegistry(cfg.Metrics)
	cfg.Alerts = telemetry.SinkFunc(func(a telemetry.Alert) {
		log.Printf("ALERT [%s] %s: %s", a.Severity, a.Source, a.Message)
	})

	fabric, err := core.New(cfg)
	if err != nil {
		return fmt.Errorf("building fabric: %w", err)
	}

	srv := ctlrpc.NewServer(fabric)
	// ctl_requests_total / ctl_inflight / ctl_request_latency_seconds ride
	// the same registry as the fabric metrics.
	srv.SetMetrics(cfg.Metrics)

	// Durable state: replay the snapshot's command list plus the journaled
	// tail against the fresh fabric, then journal every mutating command
	// from here on. Replay runs before the listener opens, so no client
	// observes a half-recovered fabric.
	var store *wal.Store
	if stateDir != "" {
		var err error
		store, err = wal.OpenStore(stateDir, wal.Options{Metrics: cfg.Metrics})
		if err != nil {
			return fmt.Errorf("lwfd: opening -state-dir: %w", err)
		}
		defer func() {
			if err := store.Close(); err != nil {
				log.Printf("lwfd: closing state dir: %v", err)
			}
		}()
		applied, failed := store.ReplayCommands(srv.ApplyCommand)
		if applied+failed > 0 {
			log.Printf("lwfd: state dir %s: replayed %d commands (%d failed) to lsn %d",
				stateDir, applied, failed, store.Log().LastLSN())
		}
		store.SetFabricSnapshot(func() ([]wal.Command, error) {
			return srv.SnapshotCommands(cubes)
		})
		srv.SetJournal(store)
		srv.SetWAL(ctlrpc.StoreWALProvider{Store: store})
	}

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("lwfd: %d cubes, %s modules, serving on %s", cubes, cfg.Transceiver.Name, lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if metricsAddr != "" {
		mlis, err := cfg.Metrics.ServeMetrics(ctx, metricsAddr)
		if err != nil {
			return err
		}
		log.Printf("lwfd: metrics on http://%s/metrics", mlis.Addr())
	}

	var teDone chan struct{}
	if teEpoch > 0 {
		loop, done, err := startTE(ctx, teEpoch, teBlocks, teUplinks)
		if err != nil {
			return fmt.Errorf("starting te loop: %w", err)
		}
		teDone = done
		srv.SetTE(ctlrpc.LoopTEProvider{L: loop})
		log.Printf("lwfd: te loop on %d blocks x %d uplinks, epoch %s", teBlocks, teUplinks, teEpoch)
	}
	if chaosOn {
		srv.SetChaos(&fabricChaos{
			fabric:    fabric,
			cInjected: cfg.Metrics.Counter("chaos_injected_total"),
		})
		log.Printf("lwfd: fault injection enabled (ber-degrade)")
	}

	if store != nil && stateSnapshotEvery > 0 {
		go func() {
			tick := time.NewTicker(stateSnapshotEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := store.Checkpoint(); err != nil {
						log.Printf("lwfd: periodic snapshot: %v", err)
					}
				}
			}
		}()
	}

	serveErr := srv.Serve(ctx, lis)

	// Shutdown ordering: Serve has returned (all connections drained, so
	// no command is mid-execution), the TE loop is stopped, then the
	// clean-shutdown snapshot captures the fabric.
	stop()
	if teDone != nil {
		<-teDone
	}
	if store != nil {
		if err := store.Checkpoint(); err != nil {
			log.Printf("lwfd: shutdown snapshot: %v", err)
		} else {
			log.Printf("lwfd: shutdown snapshot at lsn %d", store.Log().LastLSN())
		}
	}
	return serveErr
}
