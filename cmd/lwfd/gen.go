package main

import "lightwave/internal/optics"

// generationByName resolves a transceiver generation, wrapping the optics
// lookup so main stays flag-focused.
func generationByName(name string) (optics.Generation, error) {
	return optics.GenerationByName(name)
}
