package main

import (
	"context"
	"net"
	"strings"
	"testing"
	"time"

	"lightwave/internal/core"
	"lightwave/internal/ctlrpc"
	"lightwave/internal/fleet"
	"lightwave/internal/sched"
	"lightwave/internal/superpod"
)

// testSchedDial brings up a fleet server with a live scheduler attached —
// the lwfleetd -sched wiring — without the background job stream, so
// tests control every submission.
func testSchedDial(t *testing.T) func() *ctlrpc.Client {
	t.Helper()
	m := fleet.NewManager(fleet.Options{
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
	})
	t.Cleanup(m.Close)
	for _, name := range []string{"pod0", "pod1"} {
		f, err := core.New(core.DefaultConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddPod(name, fleet.NewFabricBackend(f, nil)); err != nil {
			t.Fatal(err)
		}
	}
	s, err := sched.NewScheduler(sched.SchedulerConfig{
		Pods:           []string{"pod0", "pod1"},
		InstalledCubes: 8,
		Ops:            superpod.FleetOps{M: m},
	})
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := ctlrpc.NewFleetServer(m)
	srv.SetSched(ctlrpc.SchedulerProvider{S: s})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = srv.Serve(ctx, lis)
	}()
	t.Cleanup(func() { cancel(); <-done })
	return func() *ctlrpc.Client {
		c, err := ctlrpc.Dial(lis.Addr().String(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
}

// TestDispatchSchedDisabled exercises the CLI against a daemon without
// -sched: status prints the disabled form, submit surfaces the server's
// rejection.
func TestDispatchSchedDisabled(t *testing.T) {
	dial := testFleetDial(t)
	c := dial()

	if err := dispatch(c, []string{"sched", "status"}); err != nil {
		t.Fatal(err)
	}
	err := dispatch(c, []string{"sched", "submit", "4", "100"})
	if err == nil || !strings.Contains(err.Error(), "scheduler disabled") {
		t.Fatalf("submit on disabled daemon: %v", err)
	}
	if err := dispatch(c, []string{"sched"}); err == nil {
		t.Fatal("bare sched accepted")
	}
	if err := dispatch(c, []string{"sched", "bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}

// TestDispatchSchedCommands drives submit and status end to end: the
// submitted job becomes a slice intent the reconciler realizes on a real
// fabric.
func TestDispatchSchedCommands(t *testing.T) {
	dial := testSchedDial(t)
	c := dial()

	if err := dispatch(c, []string{"sched", "status"}); err != nil {
		t.Fatal(err)
	}
	if err := dispatch(c, []string{"sched", "submit", "4", "250"}); err != nil {
		t.Fatal(err)
	}
	st, err := c.SchedStatus()
	if err != nil {
		t.Fatal(err)
	}
	if !st.Enabled || st.Submitted != 1 || st.RunningJobs != 1 {
		t.Fatalf("status after submit: %+v", st)
	}
	// Bad arguments fail client-side; oversized jobs fail server-side.
	if err := dispatch(c, []string{"sched", "submit", "4"}); err == nil {
		t.Fatal("missing duration accepted")
	}
	if err := dispatch(c, []string{"sched", "submit", "x", "10"}); err == nil {
		t.Fatal("non-numeric cubes accepted")
	}
	if err := dispatch(c, []string{"sched", "submit", "4096", "10"}); err == nil {
		t.Fatal("oversized job accepted")
	}
}
