package main

import (
	"fmt"

	"lightwave/internal/ctlrpc"
)

// dispatchWal handles the wal subcommands against either daemon.
func dispatchWal(c *ctlrpc.Client, args []string) error {
	if len(args) != 1 || args[0] != "status" {
		return fmt.Errorf("wal needs the status subcommand")
	}
	st, err := c.WALStatus()
	if err != nil {
		return err
	}
	printWALStatus(st)
	return nil
}

func printWALStatus(st ctlrpc.WALStatusResult) {
	if !st.Enabled {
		fmt.Println("wal: disabled (start the daemon with -state-dir)")
		return
	}
	fmt.Printf("state dir:      %s\n", st.Dir)
	fmt.Printf("log:            lsn %d, %d segments, %d bytes (snapshot covers lsn %d)\n",
		st.LastLSN, st.Segments, st.TotalBytes, st.SnapshotLSN)
	fmt.Printf("appends:        %d (%d bytes, %d fsyncs)\n", st.Appends, st.AppendBytes, st.Fsyncs)
	fmt.Printf("snapshots:      %d taken, %d segments compacted\n", st.Snapshots, st.Compactions)
	fmt.Printf("last recovery:  %d records replayed, %d errors, %d bytes truncated, %d segments dropped\n",
		st.ReplayRecords, st.ReplayErrors, st.TruncatedBytes, st.DroppedSegments)
	if st.FleetDigest != "" {
		fmt.Printf("fleet state:    %d pods, %d slices, digest %.16s…\n",
			st.FleetPods, st.FleetSlices, st.FleetDigest)
	}
}
