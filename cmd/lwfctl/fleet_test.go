package main

import (
	"context"
	"net"
	"testing"
	"time"

	"lightwave/internal/core"
	"lightwave/internal/ctlrpc"
	"lightwave/internal/fleet"
)

// testFleetDial brings up a lwfleetd-style fleet (real fabrics) and returns
// a dialer for fresh clients.
func testFleetDial(t *testing.T) func() *ctlrpc.Client {
	t.Helper()
	m := fleet.NewManager(fleet.Options{
		BaseBackoff: time.Millisecond,
		MaxBackoff:  8 * time.Millisecond,
	})
	t.Cleanup(m.Close)
	for _, name := range []string{"pod0", "pod1"} {
		f, err := core.New(core.DefaultConfig(8))
		if err != nil {
			t.Fatal(err)
		}
		if err := m.AddPod(name, fleet.NewFabricBackend(f, nil)); err != nil {
			t.Fatal(err)
		}
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ctlrpc.NewFleetServer(m).Serve(ctx, lis)
	}()
	t.Cleanup(func() { cancel(); <-done })
	return func() *ctlrpc.Client {
		c, err := ctlrpc.Dial(lis.Addr().String(), 2*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
}

func TestDispatchFleetCommands(t *testing.T) {
	dial := testFleetDial(t)
	c := dial()

	// Watch on its own connection: the four apply/remove commands below
	// produce at least 3 events, so `fleet watch 3` terminates.
	watchDone := make(chan error, 1)
	wc := dial()
	go func() { watchDone <- dispatch(wc, []string{"fleet", "watch", "3"}) }()
	// Give the watch a moment to subscribe before events start flowing.
	time.Sleep(50 * time.Millisecond)

	cases := [][]string{
		{"fleet", "status"},
		{"fleet", "apply", "pod0", "train", "4x4x16", "0,1,2,3"},
		{"fleet", "apply", "pod1", "infer", "4x4x8"}, // auto-placed
		{"fleet", "status"},
		{"fleet", "drain", "pod1"},
		{"fleet", "undrain", "pod1"},
		{"fleet", "drain", "pod0", "5"},
		{"fleet", "undrain", "pod0", "5"},
		{"fleet", "remove", "pod0", "train"},
		{"fleet", "status"},
	}
	for _, args := range cases {
		if err := dispatch(c, args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}

	select {
	case err := <-watchDone:
		if err != nil {
			t.Fatalf("watch: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch never saw 3 events")
	}
}

func TestDispatchFleetErrors(t *testing.T) {
	dial := testFleetDial(t)
	c := dial()
	bad := [][]string{
		{"fleet"},
		{"fleet", "bogus"},
		{"fleet", "apply", "pod0"},
		{"fleet", "apply", "pod0", "s", "4x4"},
		{"fleet", "apply", "pod0", "s", "4x4x4", "zero"},
		{"fleet", "apply", "ghost", "s", "4x4x4"},
		{"fleet", "remove", "pod0"},
		{"fleet", "drain"},
		{"fleet", "drain", "ghost"},
		{"fleet", "drain", "pod0", "x"},
		{"fleet", "watch", "x"},
		{"fleet", "watch", "1", "2"},
	}
	for _, args := range bad {
		if err := dispatch(c, args); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}
