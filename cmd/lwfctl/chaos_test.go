package main

import (
	"strings"
	"testing"

	"lightwave/internal/ctlrpc"
)

func TestParseInject(t *testing.T) {
	cases := []struct {
		kind string
		rest []string
		want ctlrpc.ChaosInjectParams
	}{
		{"pod-loss", []string{"pod2"}, ctlrpc.ChaosInjectParams{Kind: "pod-loss", Pod: "pod2"}},
		{"pod-restore", []string{"pod2"}, ctlrpc.ChaosInjectParams{Kind: "pod-restore", Pod: "pod2"}},
		{"circuit-flap", []string{"1", "3", "45"},
			ctlrpc.ChaosInjectParams{Kind: "circuit-flap", TrunkA: 1, TrunkB: 3, DurationSeconds: 45}},
		{"ber-degrade", []string{"0", "2", "1e-3"},
			ctlrpc.ChaosInjectParams{Kind: "ber-degrade", OCS: 0, Port: 2, TrunkA: 0, TrunkB: 2, BER: 1e-3, DurationSeconds: 60}},
		{"ber-degrade", []string{"0", "2", "1e-3", "30"},
			ctlrpc.ChaosInjectParams{Kind: "ber-degrade", OCS: 0, Port: 2, TrunkA: 0, TrunkB: 2, BER: 1e-3, DurationSeconds: 30}},
		{"slow-drain", []string{"pod0", "7", "120"},
			ctlrpc.ChaosInjectParams{Kind: "slow-drain", Pod: "pod0", OCS: 7, DurationSeconds: 120}},
		{"stuck-drain", []string{"pod0", "7"},
			ctlrpc.ChaosInjectParams{Kind: "stuck-drain", Pod: "pod0", OCS: 7}},
	}
	for _, tc := range cases {
		got, err := parseInject(tc.kind, tc.rest)
		if err != nil {
			t.Errorf("%s %v: %v", tc.kind, tc.rest, err)
			continue
		}
		if got != tc.want {
			t.Errorf("%s %v = %+v, want %+v", tc.kind, tc.rest, got, tc.want)
		}
	}
}

func TestParseInjectErrors(t *testing.T) {
	bad := []struct {
		kind string
		rest []string
	}{
		{"warp-core-breach", nil},
		{"pod-loss", nil},
		{"circuit-flap", []string{"1", "3"}},
		{"circuit-flap", []string{"1", "x", "45"}},
		{"ber-degrade", []string{"0", "2"}},
		{"slow-drain", []string{"pod0", "7"}},
		{"stuck-drain", []string{"pod0"}},
	}
	for _, tc := range bad {
		if _, err := parseInject(tc.kind, tc.rest); err == nil {
			t.Errorf("%s %v accepted", tc.kind, tc.rest)
		}
	}
}

// TestDispatchChaosDisabled exercises the CLI against a daemon without
// -chaos: status prints the disabled form, inject surfaces the server's
// rejection.
func TestDispatchChaosDisabled(t *testing.T) {
	dial := testFleetDial(t)
	c := dial()

	if err := dispatch(c, []string{"chaos", "status"}); err != nil {
		t.Fatal(err)
	}
	err := dispatch(c, []string{"chaos", "inject", "pod-loss", "pod0"})
	if err == nil || !strings.Contains(err.Error(), "chaos injection disabled") {
		t.Fatalf("inject on disabled daemon: %v", err)
	}
	if err := dispatch(c, []string{"chaos"}); err == nil {
		t.Fatal("bare chaos accepted")
	}
	if err := dispatch(c, []string{"chaos", "bogus"}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}
