// Command lwfctl is the operator CLI for a lightwave fabric daemon (lwfd)
// and, via the fleet subcommands, for the fleet daemon (lwfleetd).
//
// Usage:
//
//	lwfctl [-addr host:port] status
//	lwfctl compose <name> <XxYxZ> <cube,cube,...>
//	lwfctl destroy <name>
//	lwfctl slice <name>
//	lwfctl fail-cube <cube>
//	lwfctl repair-cube <cube>
//	lwfctl install-cube <cube>
//	lwfctl observe-ber <ocs> <port> <ber>
//	lwfctl te status
//	lwfctl fleet status
//	lwfctl fleet apply <pod> <name> <XxYxZ> [cube,cube,...]
//	lwfctl fleet remove <pod> <name>
//	lwfctl fleet drain <pod> [ocs]
//	lwfctl fleet undrain <pod> [ocs]
//	lwfctl fleet watch [count]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"lightwave/internal/ctlrpc"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7600", "fabric daemon address")
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		usage()
		os.Exit(2)
	}
	client, err := ctlrpc.Dial(*addr, 3*time.Second)
	if err != nil {
		fatal(err)
	}
	defer client.Close()
	if err := dispatch(client, args); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "lwfctl:", err)
	os.Exit(1)
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: lwfctl [-addr host:port] <command> [args]
commands:
  status
  compose <name> <XxYxZ> <cube,cube,...>
  reshape <name> <XxYxZ> [cube,cube,...]
  destroy <name>
  slice <name>
  fail-cube <cube>
  repair-cube <cube>
  install-cube <cube>
  observe-ber <ocs> <port> <ber>
  repair-link <ocs> <cube>
  metrics
  te status
fleet commands (against lwfleetd):
  fleet status
  fleet apply <pod> <name> <XxYxZ> [cube,cube,...]
  fleet remove <pod> <name>
  fleet drain <pod> [ocs]
  fleet undrain <pod> [ocs]
  fleet watch [count]
chaos commands (daemon must run with -chaos):
  chaos status
  chaos inject pod-loss <pod>
  chaos inject pod-restore <pod>
  chaos inject circuit-flap <blockA> <blockB> <seconds>
  chaos inject ber-degrade <a> <b> <ber> [seconds]   (a,b = block pair on lwfleetd, ocs/port on lwfd)
  chaos inject slow-drain <pod> <ocs> <seconds>
  chaos inject stuck-drain <pod> <ocs>
sched commands (lwfleetd must run with -sched):
  sched status
  sched submit <cubes> <seconds>
wal commands (daemon must run with -state-dir):
  wal status`)
}

func dispatch(c *ctlrpc.Client, args []string) error {
	switch args[0] {
	case "status":
		st, err := c.Status()
		if err != nil {
			return err
		}
		fmt.Printf("installed cubes: %d\n", st.InstalledCubes)
		fmt.Printf("free cubes:      %v\n", st.FreeCubes)
		fmt.Printf("slices:          %v\n", st.Slices)
		fmt.Printf("live circuits:   %d\n", st.TotalCircuits)
		return nil

	case "compose":
		if len(args) != 4 {
			return fmt.Errorf("compose needs <name> <XxYxZ> <cubes>")
		}
		shape, err := parseShape(args[2])
		if err != nil {
			return err
		}
		cubes, err := parseInts(args[3])
		if err != nil {
			return err
		}
		sl, err := c.Compose(args[1], shape, cubes)
		if err != nil {
			return err
		}
		printSlice(sl)
		return nil

	case "reshape":
		if len(args) != 3 && len(args) != 4 {
			return fmt.Errorf("reshape needs <name> <XxYxZ> [cubes]")
		}
		shape, err := parseShape(args[2])
		if err != nil {
			return err
		}
		var cubes []int
		if len(args) == 4 {
			cubes, err = parseInts(args[3])
			if err != nil {
				return err
			}
		}
		sl, err := c.Reshape(args[1], shape, cubes)
		if err != nil {
			return err
		}
		printSlice(sl)
		return nil

	case "destroy":
		if len(args) != 2 {
			return fmt.Errorf("destroy needs <name>")
		}
		return c.Destroy(args[1])

	case "slice":
		if len(args) != 2 {
			return fmt.Errorf("slice needs <name>")
		}
		sl, err := c.Slice(args[1])
		if err != nil {
			return err
		}
		printSlice(sl)
		return nil

	case "fail-cube":
		cube, err := oneInt(args, "fail-cube")
		if err != nil {
			return err
		}
		rc, err := c.FailCube(cube)
		if err != nil {
			return err
		}
		if rc >= 0 {
			fmt.Printf("cube %d failed; slice repaired with replacement cube %d\n", cube, rc)
		} else {
			fmt.Printf("cube %d failed; no slice affected\n", cube)
		}
		return nil

	case "repair-cube":
		cube, err := oneInt(args, "repair-cube")
		if err != nil {
			return err
		}
		return c.RepairCube(cube)

	case "install-cube":
		cube, err := oneInt(args, "install-cube")
		if err != nil {
			return err
		}
		return c.InstallCube(cube)

	case "repair-link":
		if len(args) != 3 {
			return fmt.Errorf("repair-link needs <ocs> <cube>")
		}
		ocsID, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		cube, err := strconv.Atoi(args[2])
		if err != nil {
			return err
		}
		spare, err := c.RepairLink(ocsID, cube)
		if err != nil {
			return err
		}
		fmt.Printf("cube %d repatched to spare port %d on ocs %d\n", cube, spare, ocsID)
		return nil

	case "metrics":
		text, err := c.Metrics()
		if err != nil {
			return err
		}
		fmt.Print(text)
		return nil

	case "te":
		if len(args) != 2 || args[1] != "status" {
			return fmt.Errorf("te needs the status subcommand")
		}
		st, err := c.TEStatus()
		if err != nil {
			return err
		}
		printTEStatus(st)
		return nil

	case "fleet":
		if len(args) < 2 {
			return fmt.Errorf("fleet needs a subcommand")
		}
		return dispatchFleet(c, args[1:])

	case "chaos":
		if len(args) < 2 {
			return fmt.Errorf("chaos needs a subcommand (status, inject)")
		}
		return dispatchChaos(c, args[1:])

	case "sched":
		if len(args) < 2 {
			return fmt.Errorf("sched needs a subcommand (status, submit)")
		}
		return dispatchSched(c, args[1:])

	case "wal":
		if len(args) < 2 {
			return fmt.Errorf("wal needs a subcommand (status)")
		}
		return dispatchWal(c, args[1:])

	case "observe-ber":
		if len(args) != 4 {
			return fmt.Errorf("observe-ber needs <ocs> <port> <ber>")
		}
		ocsID, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		port, err := strconv.Atoi(args[2])
		if err != nil {
			return err
		}
		ber, err := strconv.ParseFloat(args[3], 64)
		if err != nil {
			return err
		}
		anom, err := c.ObserveBER(ocsID, port, ber)
		if err != nil {
			return err
		}
		fmt.Printf("anomalous: %v\n", anom)
		return nil

	default:
		usage()
		return fmt.Errorf("unknown command %q", args[0])
	}
}

func oneInt(args []string, cmd string) (int, error) {
	if len(args) != 2 {
		return 0, fmt.Errorf("%s needs <cube>", cmd)
	}
	return strconv.Atoi(args[1])
}

func parseShape(s string) ([3]int, error) {
	parts := strings.Split(strings.ToLower(s), "x")
	if len(parts) != 3 {
		return [3]int{}, fmt.Errorf("shape %q: want XxYxZ", s)
	}
	var out [3]int
	for i, p := range parts {
		v, err := strconv.Atoi(p)
		if err != nil {
			return out, fmt.Errorf("shape %q: %w", s, err)
		}
		out[i] = v
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	var out []int
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		if p == "" {
			continue
		}
		v, err := strconv.Atoi(p)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}

func printTEStatus(st ctlrpc.TEStatusResult) {
	if !st.Enabled {
		fmt.Println("te loop: disabled (start the daemon with -te-epoch)")
		return
	}
	fmt.Printf("te loop:        %d blocks x %d uplinks, %d trunks live\n",
		st.Blocks, st.Uplinks, st.CurrentTrunks)
	fmt.Printf("epochs:         %d (last reconfig at epoch %d)\n", st.Epoch, st.LastReconfigEpoch)
	fmt.Printf("reconfigs:      %d applied (%d stages, %d trunks moved), %d held\n",
		st.Reconfigs, st.Stages, st.TrunksMoved, st.SkippedReconfigs)
	fmt.Printf("last decision:  %s\n", st.LastReason)
	fmt.Printf("last gain:      %.3f\n", st.LastGain)
	if st.LastPredictionError >= 0 {
		fmt.Printf("pred error:     %.3f\n", st.LastPredictionError)
	}
	fmt.Printf("min residual:   %.3f of capacity\n", st.MinResidualFraction)
	fmt.Printf("drained:        %.3g bps-seconds\n", st.DrainedCapacityBpsSeconds)
}

func printSlice(sl ctlrpc.SliceResult) {
	fmt.Printf("slice %s: shape %dx%dx%d, cubes %v, %d circuits, worst margin %.2f dB\n",
		sl.Name, sl.Shape[0], sl.Shape[1], sl.Shape[2], sl.Cubes, sl.Circuits, sl.WorstMarginDB)
}
