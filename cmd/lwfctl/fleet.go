package main

import (
	"fmt"
	"strconv"
	"strings"
	"time"

	"lightwave/internal/ctlrpc"
)

// dispatchFleet handles the fleet subcommand family against lwfleetd.
func dispatchFleet(c *ctlrpc.Client, args []string) error {
	switch args[0] {
	case "status":
		st, err := c.FleetStatus()
		if err != nil {
			return err
		}
		fmt.Printf("pods: %d  queue depth: %d  quarantined: %d\n",
			len(st.Pods), st.QueueDepth, st.QuarantinedPods)
		for _, p := range st.Pods {
			var flags []string
			if p.Converged {
				flags = append(flags, "converged")
			} else {
				flags = append(flags, "reconciling")
			}
			if p.Drained {
				flags = append(flags, "drained")
			}
			if p.Quarantined {
				flags = append(flags, "QUARANTINED")
			}
			if len(p.DrainedOCS) > 0 {
				flags = append(flags, fmt.Sprintf("ocs-drained %v", p.DrainedOCS))
			}
			fmt.Printf("  %-12s %s\n", p.Name, strings.Join(flags, ", "))
			fmt.Printf("    cubes %d installed / %d free, %d circuits\n",
				p.InstalledCubes, p.FreeCubes, p.Circuits)
			fmt.Printf("    intent %v actual %v\n", p.DesiredSlices, p.ActualSlices)
			if p.LastError != "" {
				fmt.Printf("    last error: %s\n", p.LastError)
			}
		}
		return nil

	case "apply":
		if len(args) != 4 && len(args) != 5 {
			return fmt.Errorf("fleet apply needs <pod> <name> <XxYxZ> [cubes]")
		}
		shape, err := parseShape(args[3])
		if err != nil {
			return err
		}
		var cubes []int
		if len(args) == 5 {
			cubes, err = parseInts(args[4])
			if err != nil {
				return err
			}
		}
		res, err := c.ApplyIntent(ctlrpc.ApplyIntentParams{Pod: args[1], Slices: []ctlrpc.SliceIntentSpec{
			{Name: args[2], Shape: shape, Cubes: cubes},
		}})
		if err != nil {
			return err
		}
		fmt.Printf("accepted %d intent(s) for %s\n", res.Accepted, args[1])
		return nil

	case "remove":
		if len(args) != 3 {
			return fmt.Errorf("fleet remove needs <pod> <name>")
		}
		_, err := c.ApplyIntent(ctlrpc.ApplyIntentParams{Pod: args[1], Slices: []ctlrpc.SliceIntentSpec{
			{Name: args[2], Remove: true},
		}})
		return err

	case "drain", "undrain":
		if len(args) != 2 && len(args) != 3 {
			return fmt.Errorf("fleet %s needs <pod> [ocs]", args[0])
		}
		var ocs *int
		if len(args) == 3 {
			v, err := strconv.Atoi(args[2])
			if err != nil {
				return err
			}
			ocs = &v
		}
		if args[0] == "drain" {
			return c.Drain(args[1], ocs)
		}
		return c.Undrain(args[1], ocs)

	case "watch":
		count := 0 // 0 = forever
		if len(args) == 2 {
			v, err := strconv.Atoi(args[1])
			if err != nil {
				return err
			}
			count = v
		} else if len(args) > 2 {
			return fmt.Errorf("fleet watch takes at most [count]")
		}
		stream, err := c.Watch()
		if err != nil {
			return err
		}
		defer stream.Close()
		for i := 0; count == 0 || i < count; i++ {
			ev, err := stream.Next()
			if err != nil {
				return err
			}
			ts := time.UnixMilli(ev.UnixMillis).Format("15:04:05.000")
			line := fmt.Sprintf("%s  %-16s %s", ts, ev.Type, ev.Pod)
			if ev.Slice != "" {
				line += "/" + ev.Slice
			}
			if ev.Detail != "" {
				line += "  " + ev.Detail
			}
			fmt.Println(line)
		}
		return nil

	default:
		usage()
		return fmt.Errorf("unknown fleet command %q", args[0])
	}
}
