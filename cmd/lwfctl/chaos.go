package main

import (
	"fmt"
	"strconv"

	"lightwave/internal/ctlrpc"
)

// dispatchChaos handles the `chaos` subcommands. Injection only works
// against a daemon started with -chaos; everything else returns the
// daemon's "chaos injection disabled" error verbatim.
func dispatchChaos(c *ctlrpc.Client, args []string) error {
	switch args[0] {
	case "status":
		st, err := c.ChaosStatus()
		if err != nil {
			return err
		}
		printChaosStatus(st)
		return nil

	case "inject":
		if len(args) < 2 {
			return fmt.Errorf("chaos inject needs a fault kind")
		}
		p, err := parseInject(args[1], args[2:])
		if err != nil {
			return err
		}
		res, err := c.ChaosInject(p)
		if err != nil {
			return err
		}
		fmt.Printf("injected: %s\n", res.Applied)
		return nil

	default:
		return fmt.Errorf("unknown chaos subcommand %q", args[0])
	}
}

// parseInject maps the CLI forms onto wire params. Bounded transients
// without an explicit duration default to 60 seconds.
func parseInject(kind string, rest []string) (ctlrpc.ChaosInjectParams, error) {
	p := ctlrpc.ChaosInjectParams{Kind: kind}
	switch kind {
	case "pod-loss", "pod-restore":
		if len(rest) != 1 {
			return p, fmt.Errorf("chaos inject %s needs <pod>", kind)
		}
		p.Pod = rest[0]
		return p, nil

	case "circuit-flap":
		if len(rest) != 3 {
			return p, fmt.Errorf("chaos inject circuit-flap needs <blockA> <blockB> <seconds>")
		}
		a, b, err := twoInts(rest[0], rest[1])
		if err != nil {
			return p, err
		}
		secs, err := strconv.ParseFloat(rest[2], 64)
		if err != nil {
			return p, err
		}
		p.TrunkA, p.TrunkB, p.DurationSeconds = a, b, secs
		return p, nil

	case "ber-degrade":
		if len(rest) != 3 && len(rest) != 4 {
			return p, fmt.Errorf("chaos inject ber-degrade needs <a> <b> <ber> [seconds]")
		}
		a, b, err := twoInts(rest[0], rest[1])
		if err != nil {
			return p, err
		}
		ber, err := strconv.ParseFloat(rest[2], 64)
		if err != nil {
			return p, err
		}
		p.DurationSeconds = 60
		if len(rest) == 4 {
			if p.DurationSeconds, err = strconv.ParseFloat(rest[3], 64); err != nil {
				return p, err
			}
		}
		// The same pair addresses a block trunk on the fleet daemon and an
		// ocs/port link on the fabric daemon; fill both wire forms.
		p.TrunkA, p.TrunkB = a, b
		p.OCS, p.Port = a, b
		p.BER = ber
		return p, nil

	case "slow-drain":
		if len(rest) != 3 {
			return p, fmt.Errorf("chaos inject slow-drain needs <pod> <ocs> <seconds>")
		}
		ocs, err := strconv.Atoi(rest[1])
		if err != nil {
			return p, err
		}
		secs, err := strconv.ParseFloat(rest[2], 64)
		if err != nil {
			return p, err
		}
		p.Pod, p.OCS, p.DurationSeconds = rest[0], ocs, secs
		return p, nil

	case "stuck-drain":
		if len(rest) != 2 {
			return p, fmt.Errorf("chaos inject stuck-drain needs <pod> <ocs>")
		}
		ocs, err := strconv.Atoi(rest[1])
		if err != nil {
			return p, err
		}
		p.Pod, p.OCS = rest[0], ocs
		return p, nil

	default:
		return p, fmt.Errorf("unknown fault kind %q", kind)
	}
}

func twoInts(sa, sb string) (int, int, error) {
	a, err := strconv.Atoi(sa)
	if err != nil {
		return 0, 0, err
	}
	b, err := strconv.Atoi(sb)
	if err != nil {
		return 0, 0, err
	}
	return a, b, nil
}

func printChaosStatus(st ctlrpc.ChaosStatusResult) {
	if !st.Enabled {
		fmt.Println("chaos: disabled (start the daemon with -chaos)")
		return
	}
	fmt.Printf("chaos:          enabled\n")
	fmt.Printf("injected:       %d faults total\n", st.InjectedTotal)
	fmt.Printf("active:         %d faults, %d trunks admin-down, %d switches down\n",
		st.ActiveFaults, st.TrunksDown, st.DownSwitches)
	if st.LastFault != "" {
		fmt.Printf("last fault:     %s\n", st.LastFault)
	}
}
