package main

import (
	"fmt"
	"strconv"
	"strings"

	"lightwave/internal/ctlrpc"
)

// dispatchSched handles the `sched` subcommands. Submission only works
// against a daemon started with -sched; without it the daemon's
// "scheduler disabled" error comes back verbatim.
func dispatchSched(c *ctlrpc.Client, args []string) error {
	switch args[0] {
	case "status":
		st, err := c.SchedStatus()
		if err != nil {
			return err
		}
		printSchedStatus(st)
		return nil

	case "submit":
		if len(args) != 3 {
			return fmt.Errorf("sched submit needs <cubes> <seconds>")
		}
		cubes, err := strconv.Atoi(args[1])
		if err != nil {
			return err
		}
		secs, err := strconv.ParseFloat(args[2], 64)
		if err != nil {
			return err
		}
		res, err := c.SchedSubmit(cubes, secs)
		if err != nil {
			return err
		}
		state := "queued"
		if res.Placed {
			state = "placed"
		}
		fmt.Printf("job %d %s (%d cubes, %.0fs)\n", res.JobID, state, cubes, secs)
		return nil

	default:
		return fmt.Errorf("unknown sched subcommand %q", args[0])
	}
}

func printSchedStatus(st ctlrpc.SchedStatusResult) {
	if !st.Enabled {
		fmt.Println("sched: disabled (start the daemon with -sched)")
		return
	}
	fmt.Printf("sched:          enabled (policy %s, pods %s)\n", st.Policy, strings.Join(st.Pods, ","))
	fmt.Printf("virtual time:   %.0fs\n", st.VirtualSeconds)
	fmt.Printf("jobs:           %d submitted, %d started, %d completed, %d preempted\n",
		st.Submitted, st.Started, st.Completed, st.Preempted)
	fmt.Printf("live:           %d running, %d queued\n", st.RunningJobs, st.QueueDepth)
	fmt.Printf("failures:       %d swaps, %d cubes migrated\n", st.Swaps, st.MigratedCubes)
	fmt.Printf("utilization:    %.4f (mean wait %.1fs)\n", st.Utilization, st.MeanWaitSeconds)
}
