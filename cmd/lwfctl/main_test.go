package main

import (
	"context"
	"net"
	"testing"
	"time"

	"lightwave/internal/core"
	"lightwave/internal/ctlrpc"
)

func TestParseShape(t *testing.T) {
	got, err := parseShape("4x8x16")
	if err != nil {
		t.Fatal(err)
	}
	if got != [3]int{4, 8, 16} {
		t.Fatalf("got %v", got)
	}
	if got, err := parseShape("4X8X16"); err != nil || got != [3]int{4, 8, 16} {
		t.Fatalf("uppercase: %v %v", got, err)
	}
	for _, bad := range []string{"4x8", "4x8x16x32", "axbxc", ""} {
		if _, err := parseShape(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

func TestParseInts(t *testing.T) {
	got, err := parseInts("1, 2,3")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[2] != 3 {
		t.Fatalf("got %v", got)
	}
	if _, err := parseInts("1,x"); err == nil {
		t.Error("bad int accepted")
	}
	if got, _ := parseInts("5,"); len(got) != 1 {
		t.Error("trailing comma mishandled")
	}
}

func testClient(t *testing.T) *ctlrpc.Client {
	t.Helper()
	f, err := core.New(core.DefaultConfig(8))
	if err != nil {
		t.Fatal(err)
	}
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		_ = ctlrpc.NewServer(f).Serve(ctx, lis)
	}()
	t.Cleanup(func() { cancel(); <-done })
	c, err := ctlrpc.Dial(lis.Addr().String(), 2*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestDispatchCommands(t *testing.T) {
	c := testClient(t)
	cases := [][]string{
		{"status"},
		{"compose", "j1", "4x4x16", "0,1,2,3"},
		{"slice", "j1"},
		{"reshape", "j1", "4x8x8"},
		{"fail-cube", "1"},
		{"repair-cube", "1"},
		{"install-cube", "12"},
		{"observe-ber", "0", "0", "1e-6"},
		{"destroy", "j1"},
	}
	for _, args := range cases {
		if err := dispatch(c, args); err != nil {
			t.Fatalf("%v: %v", args, err)
		}
	}
}

func TestDispatchErrors(t *testing.T) {
	c := testClient(t)
	bad := [][]string{
		{"bogus"},
		{"compose", "j"},
		{"compose", "j", "4x4", "0"},
		{"compose", "j", "4x4x4", "zero"},
		{"reshape", "j"},
		{"destroy"},
		{"slice"},
		{"fail-cube"},
		{"fail-cube", "x"},
		{"observe-ber", "0", "0"},
		{"observe-ber", "a", "0", "1e-6"},
		{"observe-ber", "0", "a", "1e-6"},
		{"observe-ber", "0", "0", "zzz"},
		{"destroy", "missing"},
	}
	for _, args := range bad {
		if err := dispatch(c, args); err == nil {
			t.Errorf("%v accepted", args)
		}
	}
}

func TestDispatchRepairLinkAndMetrics(t *testing.T) {
	c := testClient(t)
	if err := dispatch(c, []string{"compose", "j", "4x4x8", "0,1"}); err != nil {
		t.Fatal(err)
	}
	if err := dispatch(c, []string{"repair-link", "3", "1"}); err != nil {
		t.Fatal(err)
	}
	if err := dispatch(c, []string{"metrics"}); err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][]string{
		{"repair-link", "3"},
		{"repair-link", "x", "1"},
		{"repair-link", "3", "x"},
	} {
		if err := dispatch(c, bad); err == nil {
			t.Errorf("%v accepted", bad)
		}
	}
}
