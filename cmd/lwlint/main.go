// Command lwlint runs the project-invariant analyzer suite over the
// module: the contracts the compiler cannot see (sim.Substream-only
// randomness, virtual time in deterministic packages, sorted map
// iteration, the Injector→Manager lock order, 0-alloc hot paths, durable
// Sync/Close error handling) enforced mechanically. See DESIGN.md §15.
//
// Usage:
//
//	lwlint [-json] [-list] [packages...]
//
// Diagnostics print as `file:line: [analyzer] message` (or as a JSON
// array with -json); the exit status is 1 when any unsuppressed
// diagnostic remains, 2 on driver errors. Suppress a finding with
// `//lwlint:ignore <analyzer> <reason>` on or directly above the line —
// the reason is mandatory.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"lightwave/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array (for tooling)")
	list := flag.Bool("list", false, "list the analyzer catalog and exit")
	flag.Parse()

	analyzers := lint.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-10s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	root, err := moduleRoot()
	if err != nil {
		fmt.Fprintln(os.Stderr, "lwlint:", err)
		os.Exit(2)
	}
	diags, err := lint.Run(root, patterns, lint.DefaultConfig(), analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "lwlint:", err)
		os.Exit(2)
	}
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if diags == nil {
			diags = []lint.Diagnostic{}
		}
		if err := enc.Encode(diags); err != nil {
			fmt.Fprintln(os.Stderr, "lwlint:", err)
			os.Exit(2)
		}
	} else {
		for _, d := range diags {
			fmt.Println(d)
		}
	}
	if len(diags) > 0 {
		if !*jsonOut {
			fmt.Fprintf(os.Stderr, "lwlint: %d finding(s)\n", len(diags))
		}
		os.Exit(1)
	}
}

// moduleRoot walks up from the working directory to the enclosing go.mod.
func moduleRoot() (string, error) {
	dir, err := os.Getwd()
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}
