package main

import (
	"context"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"lightwave/internal/chaos"
	"lightwave/internal/dcn"
	"lightwave/internal/fleet"
	"lightwave/internal/sched"
	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

func TestBuildFleet(t *testing.T) {
	reg := telemetry.NewRegistry()
	m, injectable, err := buildFleet(4, 8, "2x200G-bidi-CWDM4", reg, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if injectable != nil {
		t.Fatalf("injectable backends without -chaos: %v", injectable)
	}

	st := m.Status()
	if len(st.Pods) != 4 {
		t.Fatalf("pods = %d", len(st.Pods))
	}
	for _, ps := range st.Pods {
		if !strings.HasPrefix(ps.Name, "pod") {
			t.Errorf("pod name %q", ps.Name)
		}
		if ps.InstalledCubes != 8 {
			t.Errorf("pod %s installed = %d", ps.Name, ps.InstalledCubes)
		}
	}

	// Intents applied through the manager converge on the real fabrics.
	if err := m.SetSliceIntent("pod0", fleet.SliceIntent{
		Name: "train", Shape: topo.Shape{X: 4, Y: 4, Z: 16}, Cubes: []int{0, 1, 2, 3},
	}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ps, err := m.PodStatus("pod0")
		if err != nil {
			t.Fatal(err)
		}
		if ps.Converged && len(ps.ActualSlices) == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pod0 never converged: %+v", ps)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestBuildFleetChaos verifies the -chaos wiring: every pod backend is
// wrapped in an injectable shim and a pod-loss drives the reconciler to
// quarantine through the ordinary retry path.
func TestBuildFleetChaos(t *testing.T) {
	reg := telemetry.NewRegistry()
	m, injectable, err := buildFleet(2, 4, "2x200G-bidi-CWDM4", reg, nil, true, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()
	if len(injectable) != 2 {
		t.Fatalf("injectable = %v", injectable)
	}

	inj, err := chaos.NewInjector(chaos.Targets{Fleet: m, Backends: injectable})
	if err != nil {
		t.Fatal(err)
	}
	if err := m.SetSliceIntent("pod1", fleet.SliceIntent{
		Name: "job", Shape: topo.Shape{X: 4, Y: 4, Z: 4},
	}); err != nil {
		t.Fatal(err)
	}
	if err := inj.Apply(chaos.Event{Kind: chaos.KindPodLoss, Pod: "pod1"}); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for {
		ps, err := m.PodStatus("pod1")
		if err != nil {
			t.Fatal(err)
		}
		if ps.Quarantined {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("pod1 never quarantined: %+v", ps)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestBuildFleetErrors(t *testing.T) {
	reg := telemetry.NewRegistry()
	if _, _, err := buildFleet(0, 8, "2x200G-bidi-CWDM4", reg, nil, false, nil); err == nil {
		t.Error("zero pods accepted")
	}
	if _, _, err := buildFleet(1, 8, "no-such-module", reg, nil, false, nil); err == nil {
		t.Error("unknown transceiver accepted")
	}
}

func TestMetricsEndpoint(t *testing.T) {
	reg := telemetry.NewRegistry()
	m, _, err := buildFleet(2, 4, "2x200G-bidi-CWDM4", reg, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	lis, err := reg.ServeMetrics(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}

	resp, err := http.Get("http://" + lis.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(body), "fleet.queue_depth") {
		t.Fatalf("exposition missing fleet metrics:\n%s", body)
	}
}

// TestFlowSimCountersOnMetrics mirrors run()'s dcn.SetRegistry wiring: any
// flow-level DCN simulation the daemon performs must surface its
// dcn_flowsim_* event-loop counters on the shared /metrics registry.
func TestFlowSimCountersOnMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	dcn.SetRegistry(reg)
	defer dcn.SetRegistry(nil)

	top, err := dcn.UniformMesh(4, 9)
	if err != nil {
		t.Fatal(err)
	}
	w := dcn.Workload{Demand: dcn.UniformDemand(4, 5e9), MeanFlowBytes: 2e9, Duration: 2}
	if _, err := dcn.Simulate(top, w, dcn.DefaultSimConfig()); err != nil {
		t.Fatal(err)
	}

	text := reg.Text()
	for _, name := range []string{
		"dcn_flowsim_runs_total",
		"dcn_flowsim_events_total",
		"dcn_flowsim_recompute_rounds_total",
		"dcn_flowsim_pool_hits_total",
	} {
		if !strings.Contains(text, name) {
			t.Errorf("exposition missing %s:\n%s", name, text)
		}
	}
	if reg.Counter("dcn_flowsim_events_total").Value() == 0 {
		t.Error("dcn_flowsim_events_total stayed zero across a simulation run")
	}
}

// TestSchedCountersOnMetrics mirrors run()'s -sched wiring: the background
// scheduler loop must surface its sched_* counters on the shared /metrics
// registry, and they must move once the job stream starts placing.
func TestSchedCountersOnMetrics(t *testing.T) {
	reg := telemetry.NewRegistry()
	sched.SetRegistry(reg)
	defer sched.SetRegistry(nil)

	m, _, err := buildFleet(2, 8, "2x200G-bidi-CWDM4", reg, nil, false, nil)
	if err != nil {
		t.Fatal(err)
	}
	defer m.Close()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	runner, err := newSchedRunner(m, []string{"pod0", "pod1"}, 8, 2*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	go runner.Run(ctx) //nolint:errcheck // loop exits with ctx
	s := runner.Scheduler()
	if s.Policy() != "reconfigurable" {
		t.Fatalf("default policy = %q", s.Policy())
	}

	deadline := time.Now().Add(10 * time.Second)
	for reg.Counter("sched_started_total").Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("scheduler placed nothing: %+v", s.Stats())
		}
		time.Sleep(2 * time.Millisecond)
	}

	lis, err := reg.ServeMetrics(ctx, "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + lis.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{
		"sched_submitted_total",
		"sched_started_total",
		"sched_queue_depth",
		"sched_running_jobs",
		"sched_utilization",
		"sched_wait_seconds",
	} {
		if !strings.Contains(string(body), name) {
			t.Errorf("exposition missing %s", name)
		}
	}
}
