// Command lwfleetd is the fleet control-plane daemon: it embeds N simulated
// superpod fabrics (pod0..podN-1), reconciles operator intents against them
// through internal/fleet's per-pod workers, and serves the fleet ctlrpc
// methods — fleet-status, apply-intent, drain, undrain and the watch event
// stream — on a TCP address for cmd/lwfctl.
//
// With -te-epoch it additionally runs the online topology-engineering
// loop (internal/te) over a simulated DCN fabric registered as the "dcn"
// pod: every reconfiguration stage drains and undrains the affected OCSes
// through the manager, so TE churn shows up on the fleet event stream and
// in pod status like any other maintenance.
//
// With -chaos the daemon wraps each pod backend in an injectable fault
// shim and serves the chaos-inject / chaos-status RPCs (lwfctl chaos ...)
// for live fleet-plane fault drills; without the flag those RPCs are
// rejected.
//
// With -sched the daemon runs the online §4.2.4 slice scheduler
// (internal/sched via internal/superpod): a synthetic job stream is
// scheduled onto the superpod fabrics through the fleet reconciler, fleet
// quarantine/recovery events feed back as pod down/up transitions, and the
// sched-status / sched-submit RPCs (lwfctl sched ...) expose the loop;
// without the flag those RPCs report the scheduler disabled.
//
// Usage:
//
//	lwfleetd -addr 127.0.0.1:7700 -pods 4 -cubes 64 [-metrics-addr 127.0.0.1:7780] [-te-epoch 2s] [-chaos] [-sched]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lightwave/internal/chaos"
	"lightwave/internal/core"
	"lightwave/internal/ctlrpc"
	"lightwave/internal/dcn"
	"lightwave/internal/fleet"
	"lightwave/internal/ocs"
	"lightwave/internal/optics"
	"lightwave/internal/par"
	"lightwave/internal/sched"
	"lightwave/internal/superpod"
	"lightwave/internal/te"
	"lightwave/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	pods := flag.Int("pods", 4, "number of superpod fabrics to manage")
	cubes := flag.Int("cubes", 64, "installed elemental cubes per pod (1-64)")
	transceiver := flag.String("transceiver", "2x200G-bidi-CWDM4", "transceiver generation")
	metricsAddr := flag.String("metrics-addr", "", "HTTP /metrics and /debug/pprof listen address (disabled when empty)")
	teEpoch := flag.Duration("te-epoch", 0, "topology-engineering epoch length (0 disables the TE loop)")
	teBlocks := flag.Int("te-blocks", 8, "aggregation blocks in the TE loop's DCN fabric")
	teUplinks := flag.Int("te-uplinks", 14, "uplinks per block in the TE loop's DCN fabric")
	chaosOn := flag.Bool("chaos", false, "enable fault injection (chaos-inject / chaos-status RPCs)")
	schedOn := flag.Bool("sched", false, "run the online slice scheduler (sched-status / sched-submit RPCs)")
	schedTick := flag.Duration("sched-tick", 2*time.Second, "scheduler wall-clock tick; each tick advances one virtual minute")
	flag.Parse()

	if err := run(*addr, *metricsAddr, *pods, *cubes, *transceiver, *teEpoch, *teBlocks, *teUplinks, *chaosOn, *schedOn, *schedTick); err != nil {
		log.Fatal(err)
	}
}

// startSched runs the online slice scheduler over the superpod pods in the
// background. The runner submits synthetic jobs from the production mix,
// places them as slice intents through the manager, and follows fleet
// quarantine/recovery events; the returned scheduler serves sched-status /
// sched-submit.
func startSched(ctx context.Context, m *fleet.Manager, podNames []string, cubes int, tick time.Duration) (*sched.Scheduler, error) {
	runner, err := superpod.NewRunner(superpod.RunnerConfig{
		Manager:        m,
		Pods:           podNames,
		InstalledCubes: cubes,
		Interval:       tick,
		VirtualPerTick: 60,
		Seed:           1,
	})
	if err != nil {
		return nil, err
	}
	go func() {
		if err := runner.Run(ctx); err != nil {
			log.Printf("lwfleetd: sched loop stopped: %v", err)
		}
	}()
	return runner.Scheduler(), nil
}

// startTE registers a DCN fabric as the "dcn" pod and ticks the TE loop
// in the background; every stage's OCS drains ride the manager's
// reconcile path.
func startTE(ctx context.Context, m *fleet.Manager, epoch time.Duration, blocks, uplinks int) (*te.Loop, error) {
	fabric, err := dcn.NewFabric(blocks, uplinks+2, ocs.DefaultConfig())
	if err != nil {
		return nil, err
	}
	applier, err := te.NewFleetApplier(m, "dcn", fabric)
	if err != nil {
		return nil, err
	}
	runner, err := te.NewRunner(te.RunnerConfig{
		Loop: te.Config{
			Blocks: blocks, Uplinks: uplinks, TrunkBps: 50e9,
			EpochSeconds: epoch.Seconds(),
			Applier:      applier,
		},
		Interval: epoch,
		OnStep: func(e int, plan *te.Plan) {
			if plan.Reconfigure {
				log.Printf("lwfleetd: te epoch %d: reconfigured in %d stages (gain %.3f, min residual %.2f)",
					e, len(plan.Stages), plan.PredictedGain, plan.MinResidualFraction)
			}
		},
	})
	if err != nil {
		return nil, err
	}
	if _, err := fabric.Program(runner.Loop().Current()); err != nil {
		return nil, err
	}
	go func() {
		if err := runner.Run(ctx); err != nil {
			log.Printf("lwfleetd: te loop stopped: %v", err)
		}
	}()
	return runner.Loop(), nil
}

// buildFleet constructs a manager over n simulated pods named pod0..podN-1.
// All pods and the manager share one registry, so /metrics exposes the
// fleet-wide reconcile counters alongside per-pod fabric telemetry. With
// chaosOn each pod backend is wrapped in a chaos.FaultyBackend so the
// chaos-inject RPC can fail it; the map is nil otherwise.
func buildFleet(n, cubes int, transceiver string, reg *telemetry.Registry, alerts telemetry.AlertSink, chaosOn bool) (*fleet.Manager, map[string]*chaos.FaultyBackend, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("lwfleetd: need at least 1 pod, got %d", n)
	}
	var injectable map[string]*chaos.FaultyBackend
	if chaosOn {
		injectable = make(map[string]*chaos.FaultyBackend, n)
	}
	m := fleet.NewManager(fleet.Options{Metrics: reg, Alerts: alerts})
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig(cubes)
		if transceiver != cfg.Transceiver.Name {
			gen, err := optics.GenerationByName(transceiver)
			if err != nil {
				m.Close()
				return nil, nil, err
			}
			cfg.Transceiver = gen
		}
		cfg.Metrics = reg
		cfg.Alerts = alerts
		f, err := core.New(cfg)
		if err != nil {
			m.Close()
			return nil, nil, fmt.Errorf("building pod%d fabric: %w", i, err)
		}
		name := fmt.Sprintf("pod%d", i)
		var backend fleet.Backend = fleet.NewFabricBackend(f, nil)
		if chaosOn {
			fb := chaos.NewFaultyBackend(backend)
			injectable[name] = fb
			backend = fb
		}
		if err := m.AddPod(name, backend); err != nil {
			m.Close()
			return nil, nil, err
		}
	}
	return m, injectable, nil
}

func run(addr, metricsAddr string, pods, cubes int, transceiver string, teEpoch time.Duration, teBlocks, teUplinks int, chaosOn bool, schedOn bool, schedTick time.Duration) error {
	reg := telemetry.NewRegistry()
	// Simulation fan-out (Monte Carlo, sweeps), the DCN flow simulator,
	// the TE loop, fault injection and the slice scheduler share the fleet
	// registry so par_*, dcn_flowsim_*, te_*, chaos_* and sched_* counters
	// show up on /metrics.
	par.SetRegistry(reg)
	dcn.SetRegistry(reg)
	te.SetRegistry(reg)
	chaos.SetRegistry(reg)
	sched.SetRegistry(reg)
	alerts := telemetry.SinkFunc(func(a telemetry.Alert) {
		log.Printf("ALERT [%s] %s: %s", a.Severity, a.Source, a.Message)
	})

	m, injectable, err := buildFleet(pods, cubes, transceiver, reg, alerts, chaosOn)
	if err != nil {
		return err
	}
	defer m.Close()

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("lwfleetd: %d pods x %d cubes, %s modules, serving on %s",
		pods, cubes, transceiver, lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if metricsAddr != "" {
		mlis, err := reg.ServeMetrics(ctx, metricsAddr)
		if err != nil {
			return err
		}
		log.Printf("lwfleetd: metrics on http://%s/metrics", mlis.Addr())
	}

	srv := ctlrpc.NewFleetServer(m)
	// ctl_requests_total / ctl_inflight / ctl_request_latency_seconds ride
	// the same registry as the fleet metrics.
	srv.SetMetrics(reg)
	if teEpoch > 0 {
		loop, err := startTE(ctx, m, teEpoch, teBlocks, teUplinks)
		if err != nil {
			return fmt.Errorf("starting te loop: %w", err)
		}
		srv.SetTE(ctlrpc.LoopTEProvider{L: loop})
		log.Printf("lwfleetd: te loop on %d blocks x %d uplinks, epoch %s (pod \"dcn\")",
			teBlocks, teUplinks, teEpoch)
	}
	if chaosOn {
		// Fleet-plane faults only: pod-loss/-restore through the wrapped
		// backends, drains through the manager, trunk impairments as
		// injector bookkeeping. OCS outages need a fabric target and are
		// rejected — the shared te fabric is driven by its own loop.
		det := telemetry.NewDetector("chaos-ber", alerts)
		det.HardLimit = chaos.KP4BERLimit
		inj, err := chaos.NewInjector(chaos.Targets{
			Fleet:    m,
			Backends: injectable,
			Detector: det,
		})
		if err != nil {
			return fmt.Errorf("starting chaos injector: %w", err)
		}
		srv.SetChaos(ctlrpc.InjectorProvider{In: inj})
		log.Printf("lwfleetd: fault injection enabled (%d injectable pods)", len(injectable))
	}
	if schedOn {
		podNames := make([]string, pods)
		for i := range podNames {
			podNames[i] = fmt.Sprintf("pod%d", i)
		}
		s, err := startSched(ctx, m, podNames, cubes, schedTick)
		if err != nil {
			return fmt.Errorf("starting sched loop: %w", err)
		}
		srv.SetSched(ctlrpc.SchedulerProvider{S: s})
		log.Printf("lwfleetd: slice scheduler on %d pods (tick %s, policy %s)",
			pods, schedTick, s.Policy())
	}
	return srv.Serve(ctx, lis)
}
