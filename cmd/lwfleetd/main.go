// Command lwfleetd is the fleet control-plane daemon: it embeds N simulated
// superpod fabrics (pod0..podN-1), reconciles operator intents against them
// through internal/fleet's per-pod workers, and serves the fleet ctlrpc
// methods — fleet-status, apply-intent, drain, undrain and the watch event
// stream — on a TCP address for cmd/lwfctl.
//
// Usage:
//
//	lwfleetd -addr 127.0.0.1:7700 -pods 4 -cubes 64 [-metrics-addr 127.0.0.1:7780]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"lightwave/internal/core"
	"lightwave/internal/ctlrpc"
	"lightwave/internal/dcn"
	"lightwave/internal/fleet"
	"lightwave/internal/optics"
	"lightwave/internal/par"
	"lightwave/internal/telemetry"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:7700", "listen address")
	pods := flag.Int("pods", 4, "number of superpod fabrics to manage")
	cubes := flag.Int("cubes", 64, "installed elemental cubes per pod (1-64)")
	transceiver := flag.String("transceiver", "2x200G-bidi-CWDM4", "transceiver generation")
	metricsAddr := flag.String("metrics-addr", "", "HTTP /metrics and /debug/pprof listen address (disabled when empty)")
	flag.Parse()

	if err := run(*addr, *metricsAddr, *pods, *cubes, *transceiver); err != nil {
		log.Fatal(err)
	}
}

// buildFleet constructs a manager over n simulated pods named pod0..podN-1.
// All pods and the manager share one registry, so /metrics exposes the
// fleet-wide reconcile counters alongside per-pod fabric telemetry.
func buildFleet(n, cubes int, transceiver string, reg *telemetry.Registry, alerts telemetry.AlertSink) (*fleet.Manager, error) {
	if n < 1 {
		return nil, fmt.Errorf("lwfleetd: need at least 1 pod, got %d", n)
	}
	m := fleet.NewManager(fleet.Options{Metrics: reg, Alerts: alerts})
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig(cubes)
		if transceiver != cfg.Transceiver.Name {
			gen, err := optics.GenerationByName(transceiver)
			if err != nil {
				m.Close()
				return nil, err
			}
			cfg.Transceiver = gen
		}
		cfg.Metrics = reg
		cfg.Alerts = alerts
		f, err := core.New(cfg)
		if err != nil {
			m.Close()
			return nil, fmt.Errorf("building pod%d fabric: %w", i, err)
		}
		if err := m.AddPod(fmt.Sprintf("pod%d", i), fleet.NewFabricBackend(f, nil)); err != nil {
			m.Close()
			return nil, err
		}
	}
	return m, nil
}

func run(addr, metricsAddr string, pods, cubes int, transceiver string) error {
	reg := telemetry.NewRegistry()
	// Simulation fan-out (Monte Carlo, sweeps) and the DCN flow simulator
	// share the fleet registry so par_* and dcn_flowsim_* counters show up
	// on /metrics.
	par.SetRegistry(reg)
	dcn.SetRegistry(reg)
	alerts := telemetry.SinkFunc(func(a telemetry.Alert) {
		log.Printf("ALERT [%s] %s: %s", a.Severity, a.Source, a.Message)
	})

	m, err := buildFleet(pods, cubes, transceiver, reg, alerts)
	if err != nil {
		return err
	}
	defer m.Close()

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	log.Printf("lwfleetd: %d pods x %d cubes, %s modules, serving on %s",
		pods, cubes, transceiver, lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if metricsAddr != "" {
		mlis, err := reg.ServeMetrics(ctx, metricsAddr)
		if err != nil {
			return err
		}
		log.Printf("lwfleetd: metrics on http://%s/metrics", mlis.Addr())
	}
	return ctlrpc.NewFleetServer(m).Serve(ctx, lis)
}
