// Command lwfleetd is the fleet control-plane daemon: it embeds N simulated
// superpod fabrics (pod0..podN-1), reconciles operator intents against them
// through internal/fleet's per-pod workers, and serves the fleet ctlrpc
// methods — fleet-status, apply-intent, drain, undrain and the watch event
// stream — on a TCP address for cmd/lwfctl.
//
// With -te-epoch it additionally runs the online topology-engineering
// loop (internal/te) over a simulated DCN fabric registered as the "dcn"
// pod: every reconfiguration stage drains and undrains the affected OCSes
// through the manager, so TE churn shows up on the fleet event stream and
// in pod status like any other maintenance.
//
// With -chaos the daemon wraps each pod backend in an injectable fault
// shim and serves the chaos-inject / chaos-status RPCs (lwfctl chaos ...)
// for live fleet-plane fault drills; without the flag those RPCs are
// rejected.
//
// With -sched the daemon runs the online §4.2.4 slice scheduler
// (internal/sched via internal/superpod): a synthetic job stream is
// scheduled onto the superpod fabrics through the fleet reconciler, fleet
// quarantine/recovery events feed back as pod down/up transitions, and the
// sched-status / sched-submit RPCs (lwfctl sched ...) expose the loop;
// without the flag those RPCs report the scheduler disabled.
//
// With -state-dir the daemon journals every intent mutation to a
// write-ahead log (internal/wal) and snapshots periodically: on restart
// it replays the newest snapshot plus the log tail, re-applies the
// recovered intents through the manager, and lets reconciliation converge
// the fabrics back to them. Without the flag nothing touches disk and
// behavior is unchanged.
//
// Usage:
//
//	lwfleetd -addr 127.0.0.1:7700 -pods 4 -cubes 64 [-metrics-addr 127.0.0.1:7780] [-te-epoch 2s] [-chaos] [-sched] [-state-dir /var/lib/lwfleetd]
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lightwave/internal/chaos"
	"lightwave/internal/core"
	"lightwave/internal/ctlrpc"
	"lightwave/internal/dcn"
	"lightwave/internal/fleet"
	"lightwave/internal/ocs"
	"lightwave/internal/optics"
	"lightwave/internal/par"
	"lightwave/internal/sched"
	"lightwave/internal/superpod"
	"lightwave/internal/te"
	"lightwave/internal/telemetry"
	"lightwave/internal/wal"
)

// config carries the parsed, validated flags into run.
type config struct {
	addr, metricsAddr   string
	pods, cubes         int
	transceiver         string
	teEpoch             time.Duration
	teBlocks, teUplinks int
	chaosOn, schedOn    bool
	schedTick           time.Duration
	stateDir            string
	stateSnapshotEvery  time.Duration
}

func main() {
	var cfg config
	flag.StringVar(&cfg.addr, "addr", "127.0.0.1:7700", "listen address")
	flag.IntVar(&cfg.pods, "pods", 4, "number of superpod fabrics to manage")
	flag.IntVar(&cfg.cubes, "cubes", 64, "installed elemental cubes per pod (1-64)")
	flag.StringVar(&cfg.transceiver, "transceiver", "2x200G-bidi-CWDM4", "transceiver generation")
	flag.StringVar(&cfg.metricsAddr, "metrics-addr", "", "HTTP /metrics and /debug/pprof listen address (disabled when empty)")
	flag.DurationVar(&cfg.teEpoch, "te-epoch", 0, "topology-engineering epoch length (0 disables the TE loop)")
	flag.IntVar(&cfg.teBlocks, "te-blocks", 8, "aggregation blocks in the TE loop's DCN fabric")
	flag.IntVar(&cfg.teUplinks, "te-uplinks", 14, "uplinks per block in the TE loop's DCN fabric")
	flag.BoolVar(&cfg.chaosOn, "chaos", false, "enable fault injection (chaos-inject / chaos-status RPCs)")
	flag.BoolVar(&cfg.schedOn, "sched", false, "run the online slice scheduler (sched-status / sched-submit RPCs)")
	flag.DurationVar(&cfg.schedTick, "sched-tick", 2*time.Second, "scheduler wall-clock tick; each tick advances one virtual minute")
	flag.StringVar(&cfg.stateDir, "state-dir", "", "durable-state directory: WAL + snapshots with crash recovery (disabled when empty)")
	flag.DurationVar(&cfg.stateSnapshotEvery, "state-snapshot", time.Minute, "periodic snapshot + log compaction interval (0 snapshots only on shutdown)")
	flag.Parse()

	if err := validateFlags(cfg); err != nil {
		log.Fatalf("lwfleetd: %v", err)
	}
	if err := run(cfg); err != nil {
		log.Fatal(err)
	}
}

// validateFlags rejects nonsense flag combinations up front with a
// one-line error instead of a late failure deep in construction.
func validateFlags(cfg config) error {
	if cfg.pods < 1 {
		return fmt.Errorf("-pods must be at least 1, got %d", cfg.pods)
	}
	if cfg.cubes < 1 || cfg.cubes > 64 {
		return fmt.Errorf("-cubes must be in 1-64, got %d", cfg.cubes)
	}
	if _, err := optics.GenerationByName(cfg.transceiver); err != nil {
		return fmt.Errorf("-transceiver: %v", err)
	}
	if cfg.teEpoch < 0 {
		return fmt.Errorf("-te-epoch must not be negative, got %s", cfg.teEpoch)
	}
	if cfg.schedTick <= 0 {
		return fmt.Errorf("-sched-tick must be positive, got %s", cfg.schedTick)
	}
	if cfg.teEpoch > 0 && (cfg.teBlocks < 2 || cfg.teUplinks < 1) {
		return fmt.Errorf("-te-blocks/-te-uplinks must be at least 2/1, got %d/%d", cfg.teBlocks, cfg.teUplinks)
	}
	if cfg.stateSnapshotEvery < 0 {
		return fmt.Errorf("-state-snapshot must not be negative, got %s", cfg.stateSnapshotEvery)
	}
	return nil
}

// newSchedRunner builds the online slice scheduler over the superpod pods
// without starting it, so recovery can restore the scheduler's state
// before the first tick.
func newSchedRunner(m *fleet.Manager, podNames []string, cubes int, tick time.Duration) (*superpod.Runner, error) {
	return superpod.NewRunner(superpod.RunnerConfig{
		Manager:        m,
		Pods:           podNames,
		InstalledCubes: cubes,
		Interval:       tick,
		VirtualPerTick: 60,
		Seed:           1,
	})
}

// startTE registers a DCN fabric as the "dcn" pod and ticks the TE loop
// in the background; every stage's OCS drains ride the manager's
// reconcile path. The returned channel closes when the loop goroutine
// has fully stopped.
func startTE(ctx context.Context, m *fleet.Manager, epoch time.Duration, blocks, uplinks int) (*te.Loop, chan struct{}, error) {
	fabric, err := dcn.NewFabric(blocks, uplinks+2, ocs.DefaultConfig())
	if err != nil {
		return nil, nil, err
	}
	applier, err := te.NewFleetApplier(m, "dcn", fabric)
	if err != nil {
		return nil, nil, err
	}
	runner, err := te.NewRunner(te.RunnerConfig{
		Loop: te.Config{
			Blocks: blocks, Uplinks: uplinks, TrunkBps: 50e9,
			EpochSeconds: epoch.Seconds(),
			Applier:      applier,
		},
		Interval: epoch,
		OnStep: func(e int, plan *te.Plan) {
			if plan.Reconfigure {
				log.Printf("lwfleetd: te epoch %d: reconfigured in %d stages (gain %.3f, min residual %.2f)",
					e, len(plan.Stages), plan.PredictedGain, plan.MinResidualFraction)
			}
		},
	})
	if err != nil {
		return nil, nil, err
	}
	if _, err := fabric.Program(runner.Loop().Current()); err != nil {
		return nil, nil, err
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := runner.Run(ctx); err != nil {
			log.Printf("lwfleetd: te loop stopped: %v", err)
		}
	}()
	return runner.Loop(), done, nil
}

// buildFleet constructs a manager over n simulated pods named pod0..podN-1.
// All pods and the manager share one registry, so /metrics exposes the
// fleet-wide reconcile counters alongside per-pod fabric telemetry. With
// chaosOn each pod backend is wrapped in a chaos.FaultyBackend so the
// chaos-inject RPC can fail it; the map is nil otherwise. journal, when
// non-nil, receives every intent mutation write-ahead.
func buildFleet(n, cubes int, transceiver string, reg *telemetry.Registry, alerts telemetry.AlertSink, chaosOn bool, journal fleet.Journal) (*fleet.Manager, map[string]*chaos.FaultyBackend, error) {
	if n < 1 {
		return nil, nil, fmt.Errorf("lwfleetd: need at least 1 pod, got %d", n)
	}
	var injectable map[string]*chaos.FaultyBackend
	if chaosOn {
		injectable = make(map[string]*chaos.FaultyBackend, n)
	}
	m := fleet.NewManager(fleet.Options{Metrics: reg, Alerts: alerts, Journal: journal})
	for i := 0; i < n; i++ {
		cfg := core.DefaultConfig(cubes)
		if transceiver != cfg.Transceiver.Name {
			gen, err := optics.GenerationByName(transceiver)
			if err != nil {
				m.Close()
				return nil, nil, err
			}
			cfg.Transceiver = gen
		}
		cfg.Metrics = reg
		cfg.Alerts = alerts
		f, err := core.New(cfg)
		if err != nil {
			m.Close()
			return nil, nil, fmt.Errorf("building pod%d fabric: %w", i, err)
		}
		name := fmt.Sprintf("pod%d", i)
		var backend fleet.Backend = fleet.NewFabricBackend(f, nil)
		if chaosOn {
			fb := chaos.NewFaultyBackend(backend)
			injectable[name] = fb
			backend = fb
		}
		if err := m.AddPod(name, backend); err != nil {
			m.Close()
			return nil, nil, err
		}
	}
	return m, injectable, nil
}

func run(cfg config) error {
	reg := telemetry.NewRegistry()
	// Simulation fan-out (Monte Carlo, sweeps), the DCN flow simulator,
	// the TE loop, fault injection and the slice scheduler share the fleet
	// registry so par_*, dcn_flowsim_*, te_*, chaos_* and sched_* counters
	// show up on /metrics.
	par.SetRegistry(reg)
	dcn.SetRegistry(reg)
	te.SetRegistry(reg)
	chaos.SetRegistry(reg)
	sched.SetRegistry(reg)
	alerts := telemetry.SinkFunc(func(a telemetry.Alert) {
		log.Printf("ALERT [%s] %s: %s", a.Severity, a.Source, a.Message)
	})

	// Durable state: open the WAL before anything mutates, suppress
	// journaling while the daemon reconstructs what the log already
	// records, and resume once recovery is done.
	var store *wal.Store
	var journal fleet.Journal
	if cfg.stateDir != "" {
		var err error
		store, err = wal.OpenStore(cfg.stateDir, wal.Options{Metrics: reg})
		if err != nil {
			return fmt.Errorf("lwfleetd: opening -state-dir: %w", err)
		}
		defer func() {
			if err := store.Close(); err != nil {
				log.Printf("lwfleetd: closing state dir: %v", err)
			}
		}()
		store.BeginRecovery()
		journal = store
		st := store.Status()
		log.Printf("lwfleetd: state dir %s: replayed %d records to lsn %d (%d pods, %d slices, %d errors)",
			cfg.stateDir, st.ReplayRecords, st.Log.LastLSN, st.FleetPods, st.FleetSlices, st.ReplayErrors)
	}

	m, injectable, err := buildFleet(cfg.pods, cfg.cubes, cfg.transceiver, reg, alerts, cfg.chaosOn, journal)
	if err != nil {
		return err
	}
	defer m.Close()
	if store != nil {
		if err := store.RecoverFleet(m); err != nil {
			return fmt.Errorf("lwfleetd: restoring intents: %w", err)
		}
	}

	lis, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		return err
	}
	log.Printf("lwfleetd: %d pods x %d cubes, %s modules, serving on %s",
		cfg.pods, cfg.cubes, cfg.transceiver, lis.Addr())

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if cfg.metricsAddr != "" {
		mlis, err := reg.ServeMetrics(ctx, cfg.metricsAddr)
		if err != nil {
			return err
		}
		log.Printf("lwfleetd: metrics on http://%s/metrics", mlis.Addr())
	}

	srv := ctlrpc.NewFleetServer(m)
	// ctl_requests_total / ctl_inflight / ctl_request_latency_seconds ride
	// the same registry as the fleet metrics.
	srv.SetMetrics(reg)
	if store != nil {
		srv.SetWAL(ctlrpc.StoreWALProvider{Store: store})
	}

	var inj *chaos.Injector
	if cfg.chaosOn {
		// Fleet-plane faults only: pod-loss/-restore through the wrapped
		// backends, drains through the manager, trunk impairments as
		// injector bookkeeping. OCS outages need a fabric target and are
		// rejected — the shared te fabric is driven by its own loop.
		det := telemetry.NewDetector("chaos-ber", alerts)
		det.HardLimit = chaos.KP4BERLimit
		inj, err = chaos.NewInjector(chaos.Targets{
			Fleet:    m,
			Backends: injectable,
			Detector: det,
		})
		if err != nil {
			return fmt.Errorf("starting chaos injector: %w", err)
		}
		srv.SetChaos(ctlrpc.InjectorProvider{In: inj})
		log.Printf("lwfleetd: fault injection enabled (%d injectable pods)", len(injectable))
	}

	var schedDone chan struct{}
	if cfg.schedOn {
		podNames := make([]string, cfg.pods)
		for i := range podNames {
			podNames[i] = fmt.Sprintf("pod%d", i)
		}
		runner, err := newSchedRunner(m, podNames, cfg.cubes, cfg.schedTick)
		if err != nil {
			return fmt.Errorf("starting sched loop: %w", err)
		}
		s := runner.Scheduler()
		if store != nil {
			// The scheduler is fresh: import the snapshot's state export,
			// replay the journaled input tail, and only then start
			// journaling new inputs.
			applied, failed, err := store.RecoverSched(s)
			if err != nil {
				return fmt.Errorf("lwfleetd: restoring scheduler: %w", err)
			}
			if applied+failed > 0 {
				log.Printf("lwfleetd: sched recovery: %d entries replayed, %d failed", applied, failed)
			}
			store.AttachSched(s)
			s.SetJournal(store)
		}
		schedDone = make(chan struct{})
		go func() {
			defer close(schedDone)
			if err := runner.Run(ctx); err != nil {
				log.Printf("lwfleetd: sched loop stopped: %v", err)
			}
		}()
		srv.SetSched(ctlrpc.SchedulerProvider{S: s})
		log.Printf("lwfleetd: slice scheduler on %d pods (tick %s, policy %s)",
			cfg.pods, cfg.schedTick, s.Policy())
	}

	// Recovery is complete; journal everything from here on, including the
	// TE loop's drains.
	if store != nil {
		store.EndRecovery()
	}

	var teDone chan struct{}
	if cfg.teEpoch > 0 {
		loop, done, err := startTE(ctx, m, cfg.teEpoch, cfg.teBlocks, cfg.teUplinks)
		if err != nil {
			return fmt.Errorf("starting te loop: %w", err)
		}
		teDone = done
		srv.SetTE(ctlrpc.LoopTEProvider{L: loop})
		log.Printf("lwfleetd: te loop on %d blocks x %d uplinks, epoch %s (pod \"dcn\")",
			cfg.teBlocks, cfg.teUplinks, cfg.teEpoch)
	}

	if store != nil && cfg.stateSnapshotEvery > 0 {
		go func() {
			tick := time.NewTicker(cfg.stateSnapshotEvery)
			defer tick.Stop()
			for {
				select {
				case <-ctx.Done():
					return
				case <-tick.C:
					if err := store.Checkpoint(); err != nil {
						log.Printf("lwfleetd: periodic snapshot: %v", err)
					}
				}
			}
		}()
	}

	serveErr := srv.Serve(ctx, lis)

	// Shutdown ordering: cancel the run context, drain the sched and TE
	// loops and the chaos lift timers so nothing mutates state
	// mid-snapshot, then take the clean-shutdown snapshot. The manager and
	// store close via the deferred calls after this returns.
	stop()
	if schedDone != nil {
		<-schedDone
	}
	if teDone != nil {
		<-teDone
	}
	if inj != nil {
		inj.Close()
	}
	if store != nil {
		if err := store.Checkpoint(); err != nil {
			log.Printf("lwfleetd: shutdown snapshot: %v", err)
		} else {
			log.Printf("lwfleetd: shutdown snapshot at lsn %d", store.Log().LastLSN())
		}
	}
	return serveErr
}
