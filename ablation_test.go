package lightwave_test

// Ablation benchmarks for the design choices DESIGN.md calls out: each one
// removes or degrades a design element and reports how much of the paper's
// benefit disappears.

import (
	"testing"

	"lightwave/internal/avail"
	"lightwave/internal/dsp"
	"lightwave/internal/fec"
	"lightwave/internal/mlperf"
	"lightwave/internal/optics"
	"lightwave/internal/sched"
	"lightwave/internal/sim"
)

// BenchmarkAblationOIM reports the sensitivity penalty of running the bidi
// link without the interference-mitigation notch filter at MPI −32 dB.
func BenchmarkAblationOIM(b *testing.B) {
	r := dsp.DefaultReceiver()
	var penalty float64
	for i := 0; i < b.N; i++ {
		with, err1 := r.Sensitivity(fec.KP4Threshold, dsp.MPICondition{MPIDB: -32, OIM: true})
		without, err2 := r.Sensitivity(fec.KP4Threshold, dsp.MPICondition{MPIDB: -32})
		if err1 != nil || err2 != nil {
			b.Fatal(err1, err2)
		}
		penalty = without - with
	}
	b.ReportMetric(penalty, "dB-lost-without-OIM")
}

// BenchmarkAblationCirculator compares the re-engineered circulator against
// the legacy telecom part: the MPI increase on a production-style link.
func BenchmarkAblationCirculator(b *testing.B) {
	gen, err := optics.GenerationByName("2x200G-bidi-CWDM4")
	if err != nil {
		b.Fatal(err)
	}
	ta, tb := optics.NewTransceiver(gen), optics.NewTransceiver(gen)
	var delta float64
	for i := 0; i < b.N; i++ {
		good := optics.NewBidiLink(ta, tb, optics.DefaultCirculator(), 1.8, -46, 0.12)
		bad := optics.NewBidiLink(ta, tb, optics.TelecomCirculator(), 1.8, -46, 0.12)
		gb, err1 := good.BudgetTowardB()
		bb, err2 := bad.BudgetTowardB()
		if err1 != nil || err2 != nil {
			b.Fatal(err1, err2)
		}
		delta = bb.MPIDB - gb.MPIDB
	}
	b.ReportMetric(delta, "dB-MPI-worse-with-telecom-part")
}

// BenchmarkAblationDuplex reports the fabric-availability loss of building
// the pod with standard duplex transceivers (96 OCSes) instead of bidi
// (48).
func BenchmarkAblationDuplex(b *testing.B) {
	var loss float64
	for i := 0; i < b.N; i++ {
		bidi := avail.FabricAvailability(0.999, 48)
		duplex := avail.FabricAvailability(0.999, 96)
		loss = bidi - duplex
	}
	b.ReportMetric(100*loss, "availability-pp-lost-with-duplex")
}

// BenchmarkAblationReconfigurability reports the goodput lost at the
// 1024-TPU slice size when the fabric cannot swap cubes (static instead of
// reconfigurable) — the heart of Fig 15b.
func BenchmarkAblationReconfigurability(b *testing.B) {
	p := avail.DefaultPod(0.999)
	var lost float64
	for i := 0; i < b.N; i++ {
		lost = p.Goodput(16, true) - p.Goodput(16, false)
	}
	b.ReportMetric(100*lost, "goodput-pp-lost-static")
}

// BenchmarkAblationShapeSearch reports LLM1's speedup if the slice shape
// could not be adapted (always the symmetric static shape): by definition
// 1.0 vs the optimizer's 3.32 — reported as the forfeited factor.
func BenchmarkAblationShapeSearch(b *testing.B) {
	sys := mlperf.DefaultSystem()
	var forfeited float64
	for i := 0; i < b.N; i++ {
		res, err := sys.OptimizeSlice(mlperf.LLM1(), 64)
		if err != nil {
			b.Fatal(err)
		}
		forfeited = res.Speedup
	}
	b.ReportMetric(forfeited, "speedup-forfeited-without-reconfig")
}

// BenchmarkAblationMPOvershoot sweeps the model-parallel overshoot exponent
// and reports how LLM1's speedup depends on it — the key calibrated
// constant of the Table 2 model.
func BenchmarkAblationMPOvershoot(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		speeds := make([]float64, 0, 3)
		for _, exp := range []float64{0.05, 0.1, 0.2} {
			sys := mlperf.DefaultSystem()
			sys.MPOvershootExp = exp
			res, err := sys.OptimizeSlice(mlperf.LLM1(), 64)
			if err != nil {
				b.Fatal(err)
			}
			speeds = append(speeds, res.Speedup)
		}
		spread = speeds[0] - speeds[2]
	}
	b.ReportMetric(spread, "LLM1-speedup-spread")
}

// BenchmarkAblationBackfill sweeps the scheduler's backfill window,
// reporting the utilization lost with strict FIFO (window 1).
func BenchmarkAblationBackfill(b *testing.B) {
	mix := sched.ProductionMix()
	var lost float64
	for i := 0; i < b.N; i++ {
		cfg := sched.ReferenceConfig()
		cfg.Duration = 100000
		full, err := sched.Simulate(sched.FullPod(), sched.Reconfigurable{}, mix, cfg)
		if err != nil {
			b.Fatal(err)
		}
		cfg.BackfillWindow = 1
		strict, err := sched.Simulate(sched.FullPod(), sched.Reconfigurable{}, mix, cfg)
		if err != nil {
			b.Fatal(err)
		}
		lost = full.Utilization - strict.Utilization
	}
	b.ReportMetric(100*lost, "utilization-pp-lost-strict-FIFO")
}

// BenchmarkAblationInterleaving compares the concatenated codec's burst
// tolerance with and without cross-codeword interleaving (depth 8 vs 1).
func BenchmarkAblationInterleaving(b *testing.B) {
	deep, err := fec.NewCodec()
	if err != nil {
		b.Fatal(err)
	}
	shallow, err := fec.NewCodec()
	if err != nil {
		b.Fatal(err)
	}
	shallow.Depth = 1
	rng := sim.NewRand(77)
	survive := func(c *fec.Codec) float64 {
		msgs := make([][]int, c.Depth)
		for d := range msgs {
			msgs[d] = make([]int, c.Outer.K())
			for j := range msgs[d] {
				msgs[d][j] = rng.Intn(1024)
			}
		}
		frame, err := c.Encode(msgs)
		if err != nil {
			b.Fatal(err)
		}
		// Destroy four adjacent inner blocks (a connector-scrape burst).
		n := c.Inner.N()
		for i := 10 * n; i < 14*n; i++ {
			frame[i] ^= byte(rng.Intn(2))
		}
		if _, _, err := c.DecodeHard(frame); err != nil {
			return 0
		}
		return 1
	}
	var deepOK, shallowOK float64
	for i := 0; i < b.N; i++ {
		deepOK = survive(deep)
		shallowOK = survive(shallow)
	}
	b.ReportMetric(deepOK, "deep-interleave-survives-burst")
	b.ReportMetric(shallowOK, "depth1-survives-burst")
	if deepOK < shallowOK {
		b.Fatal("interleaving should not hurt burst tolerance")
	}
}
