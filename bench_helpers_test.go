package lightwave_test

import (
	"testing"

	"lightwave/internal/core"
)

// newBenchFabric builds a full 64-cube fabric for control-plane benches.
func newBenchFabric(b *testing.B) *core.Fabric {
	b.Helper()
	f, err := core.New(core.DefaultConfig(64))
	if err != nil {
		b.Fatal(err)
	}
	return f
}
