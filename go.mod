module lightwave

go 1.22
