// DCN topology engineering: build a skewed long-lived traffic matrix,
// engineer a direct-connect topology for it, decompose the topology into
// per-OCS matchings, and compare flow completion time and saturation
// throughput against a demand-oblivious uniform mesh (§2.1, §4.2).
//
//	go run ./examples/topoengineering
package main

import (
	"fmt"
	"log"

	"lightwave/internal/dcn"
)

func main() {
	blocks, uplinks := 12, 33
	demand := dcn.SkewedDemand(blocks, 0.5e9, 12, 300, 7)

	engineered, err := dcn.Engineer(blocks, uplinks, demand)
	if err != nil {
		log.Fatal(err)
	}
	uniform, err := dcn.UniformMesh(blocks, uplinks)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("trunk counts (engineered / uniform) for the first blocks:")
	for i := 0; i < 4; i++ {
		for j := i + 1; j < 6; j++ {
			fmt.Printf("  AB%d-AB%d: %2d / %2d trunks (demand %.1f Gbps)\n",
				i, j, engineered.Links[i][j], uniform.Links[i][j], (demand[i][j]+demand[j][i])/1e9)
		}
	}

	matchings := engineered.Decompose()
	fmt.Printf("engineered topology decomposes into %d per-OCS matchings\n", len(matchings))

	w := dcn.Workload{MeanFlowBytes: 20e9, Duration: 5}
	cmp, err := dcn.CompareTopologies(blocks, uplinks, demand, w, dcn.DefaultSimConfig())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("mean FCT: uniform %.3fs, engineered %.3fs (%.1f%% better)\n",
		cmp.Uniform.MeanFCT, cmp.Engineered.MeanFCT, 100*cmp.FCTImprovement)
	fmt.Printf("saturation throughput: uniform %.2f Tbps, engineered %.2f Tbps (+%.1f%%)\n",
		cmp.UniformBps/1e12, cmp.EngineeredBps/1e12, 100*cmp.ThroughputGain)
	fmt.Printf("transit fraction: uniform %.2f, engineered %.2f\n",
		cmp.Uniform.TransitFraction, cmp.Engineered.TransitFraction)
}
