// DCN fabric operations: engineer a topology for a skewed demand, program
// it onto physical OCS hardware (incremental edge-coloring placement),
// shift the demand and reprogram in service, then break a switch and let
// the fabric heal around it.
//
//	go run ./examples/dcnfabric
package main

import (
	"fmt"
	"log"

	"lightwave/internal/dcn"
	"lightwave/internal/ocs"
)

func main() {
	blocks, uplinks := 10, 18
	fabric, err := dcn.NewFabric(blocks, uplinks+6, ocs.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}

	// Morning demand: hot pair (0,3).
	d1 := dcn.UniformDemand(blocks, 1e9)
	d1[0][3], d1[3][0] = 60e9, 60e9
	t1, err := dcn.Engineer(blocks, uplinks, d1)
	if err != nil {
		log.Fatal(err)
	}
	res, err := fabric.Program(t1)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial program: %d circuits established (hot pair 0-3 gets %d trunks)\n",
		res.Established, t1.Links[0][3])

	// Afternoon demand: heat moves to (5,8); reprogram in service.
	d2 := dcn.UniformDemand(blocks, 1e9)
	d2[5][8], d2[8][5] = 60e9, 60e9
	t2, err := dcn.Engineer(blocks, uplinks, d2)
	if err != nil {
		log.Fatal(err)
	}
	res, err = fabric.Program(t2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("re-engineering: kept %d trunks in place, tore down %d, established %d\n",
		res.Kept, res.TornDown, res.Established)
	fmt.Printf("live topology matches target: %v\n", fabric.Matches(t2))

	// A switch dies; heal around it.
	lost, err := fabric.FailSwitch(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("OCS 2 failed: %d trunks lost\n", lost)
	res, err = fabric.HealAfterFailure(t2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("healed: re-established %d trunks on surviving switches (kept %d), topology restored: %v\n",
		res.Established, res.Kept, fabric.Matches(t2))
}
