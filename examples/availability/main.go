// Availability study: how transceiver choice sets the OCS count and fabric
// availability (Fig 15a), and how the reconfigurable fabric's cube-swap
// ability translates into goodput at a fixed system-availability target
// (Fig 15b).
//
//	go run ./examples/availability
package main

import (
	"fmt"
	"log"

	"lightwave/internal/avail"
	"lightwave/internal/optics"
	"lightwave/internal/sim"
)

func main() {
	fmt.Println("fabric availability by transceiver (per-OCS availability 99.9%):")
	for _, name := range []string{"200G-CWDM4", "2x200G-bidi-CWDM4", "800G-bidi-CWDM8"} {
		gen, err := optics.GenerationByName(name)
		if err != nil {
			log.Fatal(err)
		}
		n, err := avail.OCSCount(gen)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-20s %2d OCSes -> %.1f%% fabric availability\n",
			name, n, 100*avail.FabricAvailability(0.999, n))
	}

	fmt.Println("\ngoodput at 97% system availability (reconfigurable vs static):")
	rng := sim.NewRand(99)
	for _, serverAvail := range []float64{0.99, 0.995, 0.999} {
		pod := avail.DefaultPod(serverAvail)
		fmt.Printf("  server availability %.1f%%: hold back %d cubes\n",
			100*serverAvail, pod.HoldBack())
		for _, k := range []int{4, 16, 32} {
			re := pod.Goodput(k, true)
			st := pod.Goodput(k, false)
			mc := pod.MonteCarloGoodput(k, true, 5000, rng.Split())
			fmt.Printf("    %4d-TPU slices: reconfigurable %.0f%% (MC check %.0f%%), static %.0f%%\n",
				k*64, 100*re, 100*mc, 100*st)
		}
	}
}
