// Superpod operations: run a full 64-cube fabric through a realistic
// sequence — compose several differently-shaped slices for different
// models, feed BER telemetry through the anomaly detector, break hardware
// (an OCS driver board and a cube), and watch the control plane keep the
// slices alive.
//
//	go run ./examples/superpod
package main

import (
	"fmt"
	"log"

	"lightwave/internal/core"
	"lightwave/internal/mlperf"
	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

func main() {
	cfg := core.DefaultConfig(64)
	cfg.Metrics = telemetry.NewRegistry()
	sink := &telemetry.MemorySink{}
	cfg.Alerts = sink
	fabric, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Three jobs with different shapes, chosen by the mlperf optimizer for
	// different models on partial allocations.
	sys := mlperf.DefaultSystem()
	jobs := []struct {
		name  string
		model mlperf.LLM
		cubes int
	}{
		{"llm0-train", mlperf.LLM0(), 32},
		{"llm2-eval", mlperf.LLM2(), 16},
		{"ablation", mlperf.LLM1(), 8},
	}
	next := 0
	for _, j := range jobs {
		res, err := sys.OptimizeSlice(j.model, j.cubes)
		if err != nil {
			log.Fatalf("%s: %v", j.name, err)
		}
		cubes := make([]int, j.cubes)
		for i := range cubes {
			cubes[i] = next
			next++
		}
		sl, err := fabric.ComposeSlice(j.name, res.Best.Shape, cubes)
		if err != nil {
			log.Fatalf("%s: %v", j.name, err)
		}
		fmt.Printf("composed %-12s shape %-9s on %2d cubes (%4d circuits, margin %.2f dB)\n",
			sl.Name, sl.Shape, len(sl.Cubes), len(sl.Circuits), sl.WorstMarginDB)
	}
	fmt.Printf("pod: %d live circuits, %d free cubes\n\n",
		fabric.TotalCircuits(), len(fabric.FreeCubes()))

	// Telemetry: healthy fleet readings, then a degrading link.
	for i := 0; i < 20; i++ {
		fabric.ObserveLinkBER(topo.OCSID(3), 17, 1.2e-6)
	}
	fabric.ObserveLinkBER(topo.OCSID(3), 17, 8e-4) // above the KP4 threshold
	for _, a := range sink.Alerts() {
		fmt.Printf("alert: [%s] %s: %s\n", a.Severity, a.Source, a.Message)
	}

	// Hardware faults: an HV driver board on OCS 5 drops circuits; then a
	// cube fails and the fabric swaps in a spare.
	sw, _ := fabric.Switch(5)
	dropped, _ := sw.FailDriverBoard(2)
	fmt.Printf("\nOCS 5 driver board 2 failed: %d circuits dropped\n", len(dropped))

	rc, err := fabric.MarkCubeFailed(10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cube 10 failed: replacement cube %d swapped into its slice\n", rc)

	// A damaged fiber pair: repatch to one of the OCS's reserved spares and
	// re-establish the circuits that ran through it.
	spare, err := fabric.RepairLink(topo.OCSID(12), 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cube 3's fibers on OCS 12 repatched to spare port %d\n", spare)

	sl, _ := fabric.GetSlice("llm0-train")
	fmt.Printf("llm0-train now on cubes %v...\n", sl.Cubes[:8])

	fmt.Printf("\nmetrics: slices=%d swaps=%d\n",
		cfg.Metrics.Counter("fabric.slices_composed").Value(),
		cfg.Metrics.Counter("fabric.cube_swaps").Value())
}
