// Quickstart: build a small lightwave fabric, compose a slice, inspect its
// circuits and optical margins, and exercise the failure-handling path.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lightwave/internal/core"
	"lightwave/internal/telemetry"
	"lightwave/internal/topo"
)

func main() {
	// A fabric with 8 installed cubes (512 TPUs) using the production bidi
	// CWDM4 modules and 48 Palomar OCSes.
	cfg := core.DefaultConfig(8)
	cfg.Metrics = telemetry.NewRegistry()
	fabric, err := core.New(cfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fabric up: %d cubes installed, %d OCSes\n", fabric.InstalledCubes(), topo.NumOCS)

	// Compose a 4-cube slice as a 4x4x16 torus from non-contiguous cubes —
	// the OCS indirection makes physical position irrelevant.
	slice, err := fabric.ComposeSlice("demo", topo.Shape{X: 4, Y: 4, Z: 16}, []int{0, 2, 5, 7})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slice %q: shape %s, %d OCS circuits, worst link margin %.2f dB\n",
		slice.Name, slice.Shape, len(slice.Circuits), slice.WorstMarginDB)

	// Peek at the first few circuits: each is one OCS cross-connection
	// carrying a face-to-face inter-cube optical link.
	for _, c := range slice.Circuits[:4] {
		fmt.Printf("  OCS %2d (dim %d, face index %2d): cube %d(+) -> cube %d(-)\n",
			c.OCS, c.OCS.DimOf(), c.OCS.IndexOf(), c.North, c.South)
	}

	// A cube fails: the fabric swaps a healthy free cube in and reprograms
	// only the circuits touching the replaced position.
	replacement, err := fabric.MarkCubeFailed(2)
	if err != nil {
		log.Fatal(err)
	}
	slice, _ = fabric.GetSlice("demo")
	fmt.Printf("cube 2 failed -> replacement cube %d; slice now on cubes %v\n",
		replacement, slice.Cubes)

	// Tear down; all ports return to the pool.
	if err := fabric.DestroySlice("demo"); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("slice destroyed; %d circuits live, free cubes %v\n",
		fabric.TotalCircuits(), fabric.FreeCubes())
}
