// LLM training slice optimization: run the paper's Table 2 workloads plus a
// custom model through the slice-shape optimizer and print the per-shape
// step-time breakdown — showing why there is "no one-size-fits-all optimal
// slice configuration".
//
//	go run ./examples/llmtraining
package main

import (
	"fmt"
	"log"

	"lightwave/internal/mlperf"
)

func main() {
	sys := mlperf.DefaultSystem()

	models := []mlperf.LLM{mlperf.LLM0(), mlperf.LLM1(), mlperf.LLM2()}
	// A custom 20B model with a modest batch: plenty of model parallelism
	// relative to data parallelism.
	models = append(models, mlperf.LLM{
		Name: "custom-20B", Params: 20e9, Layers: 40, Hidden: 6464,
		GlobalBatch: 1024, SeqLen: 2048, InherentMP: 8, A2ABytesPerToken: 1024,
	})

	for _, m := range models {
		res, err := sys.OptimizeSlice(m, 64)
		if err != nil {
			log.Fatalf("%s: %v", m.Name, err)
		}
		fmt.Printf("%s (%.0fB params, batch %g):\n", m.Name, m.Params/1e9, m.GlobalBatch)
		fmt.Printf("  optimal slice %s, %.2fx vs static %s\n",
			res.Best.Shape, res.Speedup, res.Baseline.Shape)
		fmt.Printf("  %-10s %9s %8s %8s %8s %8s\n", "shape", "step(s)", "compute", "tp", "dp", "a2a")
		shown := 0
		for _, st := range res.All {
			if !st.Feasible {
				continue
			}
			fmt.Printf("  %-10s %9.3f %8.3f %8.3f %8.3f %8.3f\n",
				st.Shape, st.Step.Total, st.Step.Compute, st.Step.TP, st.Step.DP, st.Step.A2A)
			shown++
			if shown == 5 {
				break
			}
		}
		fmt.Println()
	}
}
